"""Rule-based co-reference resolution.

Resolves pronouns ("it", "they", "he") and definite nominals ("the
company", "the startup") to the most salient compatible entity mention
earlier in the document.  The paper uses coreference output as a triple-
extraction heuristic: resolving arguments to named entities before
emitting triples; this module provides exactly that substitution map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nlp.ner import EntityMention

# Pronoun -> compatible entity labels.
_PRONOUN_COMPAT = {
    "it": {"ORG", "PRODUCT", "LOCATION", "MISC"},
    "its": {"ORG", "PRODUCT", "LOCATION", "MISC"},
    "itself": {"ORG", "PRODUCT", "LOCATION", "MISC"},
    "he": {"PERSON"},
    "him": {"PERSON"},
    "his": {"PERSON"},
    "she": {"PERSON"},
    "her": {"PERSON"},
    "they": {"ORG", "PERSON"},
    "them": {"ORG", "PERSON"},
    "their": {"ORG", "PERSON"},
}

# Definite nominal head -> compatible entity labels.
_NOMINAL_COMPAT = {
    "company": {"ORG"},
    "firm": {"ORG"},
    "startup": {"ORG"},
    "manufacturer": {"ORG"},
    "maker": {"ORG"},
    "agency": {"ORG"},
    "organization": {"ORG"},
    "group": {"ORG"},
    "corporation": {"ORG"},
    "city": {"LOCATION"},
    "country": {"LOCATION"},
    "state": {"LOCATION"},
    "executive": {"PERSON"},
    "founder": {"PERSON"},
    "ceo": {"PERSON"},
    "analyst": {"PERSON"},
    "spokesman": {"PERSON"},
    "device": {"PRODUCT"},
    "product": {"PRODUCT"},
    "drone": {"PRODUCT"},
}


@dataclass
class CorefChain:
    """One resolved chain: a representative entity and its mentions."""

    representative: str
    label: str
    mentions: List[Tuple[int, int, int]] = field(default_factory=list)
    # each mention is (sentence_index, token_start, token_end)


class CorefResolver:
    """Salience-stack resolver over per-sentence NER output.

    Usage: call :meth:`observe_sentence` for each sentence in document
    order; it returns a substitution map from token index to the
    representative entity text for any pronoun/nominal it resolved.
    """

    def __init__(self, max_distance: int = 3) -> None:
        # Only antecedents from the last ``max_distance`` sentences are
        # considered (news text rarely needs more).
        self.max_distance = max_distance
        self._salience: List[Tuple[int, EntityMention]] = []  # (sentence idx, mention)
        self.chains: Dict[str, CorefChain] = {}

    def observe_sentence(
        self,
        sentence_index: int,
        tokens: Sequence,
        tags: Sequence[str],
        mentions: Sequence[EntityMention],
    ) -> Dict[int, str]:
        """Record entities and resolve anaphora in one sentence.

        Returns:
            Map ``token_index -> representative text`` for resolved spans.
        """
        substitutions: Dict[int, str] = {}
        mention_starts = {m.start for m in mentions}
        covered = set()
        for m in mentions:
            covered.update(m.span())

        for i, token in enumerate(tokens):
            if i in covered:
                continue
            lower = token.lower

            compat = _PRONOUN_COMPAT.get(lower)
            if compat and tags[i] in {"PRP", "PRP$"}:
                antecedent = self._find_antecedent(sentence_index, compat)
                if antecedent is not None:
                    substitutions[i] = antecedent.text
                    self._record_chain(antecedent, sentence_index, i, i + 1)
                continue

            # Definite nominal: "the company", "the French manufacturer".
            if lower in _NOMINAL_COMPAT and i >= 1 and tokens[i - 1].lower == "the":
                compat = _NOMINAL_COMPAT[lower]
                antecedent = self._find_antecedent(
                    sentence_index, compat, allow_same_sentence=True
                )
                if antecedent is not None:
                    substitutions[i] = antecedent.text
                    substitutions[i - 1] = ""  # drop the determiner
                    self._record_chain(antecedent, sentence_index, i - 1, i + 1)

        # Update salience *after* resolution so cataphora doesn't trigger.
        for m in mentions:
            if m.label in {"ORG", "PERSON", "LOCATION", "PRODUCT", "MISC"}:
                self._salience.append((sentence_index, m))
                self._record_chain(m, sentence_index, m.start, m.end)
        self._prune(sentence_index)
        del mention_starts
        return substitutions

    # ------------------------------------------------------------------
    def _find_antecedent(
        self,
        sentence_index: int,
        compatible_labels: set,
        allow_same_sentence: bool = False,
    ) -> Optional[EntityMention]:
        for sent_idx, mention in reversed(self._salience):
            if not allow_same_sentence and sent_idx == sentence_index:
                continue
            if sentence_index - sent_idx > self.max_distance:
                break
            if mention.label in compatible_labels:
                return mention
        return None

    def _record_chain(
        self, mention: EntityMention, sentence_index: int, start: int, end: int
    ) -> None:
        chain = self.chains.setdefault(
            mention.text, CorefChain(representative=mention.text, label=mention.label)
        )
        entry = (sentence_index, start, end)
        if entry not in chain.mentions:
            chain.mentions.append(entry)

    def _prune(self, sentence_index: int) -> None:
        cutoff = sentence_index - self.max_distance
        self._salience = [
            (idx, m) for idx, m in self._salience if idx >= cutoff
        ]
