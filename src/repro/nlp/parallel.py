"""Process-pool parallel NLP extraction (paper §3.5 scalability).

Documents are independent until the collective linking pass: the
pipeline components hold only construction-time state (lexicon,
gazetteer, frame lexicon) and the coreference resolver is created per
document, so extracting N documents concurrently and re-ordering the
results to submission order is byte-identical to the serial loop.

:class:`ParallelExtractor` owns a ``ProcessPoolExecutor`` whose workers
each build one :class:`~repro.nlp.pipeline.NlpPipeline` from a
picklable :class:`PipelineSpec` at initialization and reuse it for
every document.  The pool uses the *spawn* start context: the engine
runs inside services with live drainer/gateway threads, and forking a
threaded process is undefined behaviour.

Failure semantics: a worker death (OOM kill, segfault) breaks the whole
pool.  Extraction is pure — no engine state has been touched — so the
executor rebuilds the pool and retries the batch once; if the pool
breaks again it raises :class:`~repro.errors.ExtractionError` naming
the first document whose result was lost, and the caller's batch fails
atomically.
"""

from __future__ import annotations

import importlib
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigError, ExtractionError
from repro.nlp.dates import SimpleDate
from repro.nlp.pipeline import NlpPipeline, RawTriple

__all__ = [
    "ExtractedDocument",
    "ExtractionJob",
    "ParallelExtractor",
    "PipelineSpec",
]


@dataclass(frozen=True)
class PipelineSpec:
    """Everything needed to rebuild an ``NlpPipeline`` in a worker.

    The gazetteer / alias maps are plain ``str -> str`` dicts (KB
    snapshots), so the spec pickles cheaply and the rebuilt pipeline is
    configured identically to the parent's.

    ``fault_hook`` is a test-only seam: a ``"module:attribute"`` dotted
    name resolved inside each worker and called with every
    :class:`ExtractionJob` before extraction — fault-injection tests
    use it to kill a worker mid-batch deterministically.  Production
    code never sets it.
    """

    gazetteer: Dict[str, str]
    kb_aliases: Dict[str, str]
    use_srl: bool = True
    use_coref: bool = True
    min_confidence: float = 0.0
    fault_hook: Optional[str] = None

    @classmethod
    def from_pipeline(cls, pipeline: NlpPipeline) -> "PipelineSpec":
        """Capture a live pipeline's configuration."""
        return cls(
            gazetteer=dict(pipeline.ner.gazetteer),
            kb_aliases=dict(pipeline.ner.kb_aliases),
            use_srl=pipeline.srl is not None,
            use_coref=pipeline.use_coref,
            min_confidence=pipeline.min_confidence,
        )

    def build(self) -> NlpPipeline:
        """Construct the pipeline this spec describes."""
        return NlpPipeline(
            gazetteer=dict(self.gazetteer),
            kb_aliases=dict(self.kb_aliases),
            use_srl=self.use_srl,
            use_coref=self.use_coref,
            min_confidence=self.min_confidence,
        )


@dataclass(frozen=True)
class ExtractionJob:
    """One document submitted for extraction."""

    text: str
    doc_id: str = ""
    date: Optional[SimpleDate] = None
    source: str = ""


@dataclass
class ExtractedDocument:
    """Extraction output for one document, in submission order.

    ``context_words`` is ``None`` for triple-less documents — exactly
    the shape :meth:`repro.core.pipeline.Nous.ingest_batch` feeds the
    collective linking pass, so the parallel and serial paths assemble
    identical linking inputs.
    """

    doc_id: str
    triples: List[RawTriple]
    context_words: Optional[List[str]]


# ----------------------------------------------------------------------
# Worker-side state: one pipeline per process, built by the initializer
# and reused for every job the worker handles.
# ----------------------------------------------------------------------
_worker_pipeline: Optional[NlpPipeline] = None
_worker_hook: Optional[Callable[[ExtractionJob], None]] = None


def _resolve_hook(dotted: Optional[str]) -> Optional[Callable[[ExtractionJob], None]]:
    if not dotted:
        return None
    module_name, _, attribute = dotted.partition(":")
    if not module_name or not attribute:
        raise ConfigError(f"fault_hook must be 'module:attribute', got {dotted!r}")
    hook = getattr(importlib.import_module(module_name), attribute)
    if not callable(hook):
        raise ConfigError(f"fault_hook {dotted!r} is not callable")
    return hook  # type: ignore[no-any-return]


def _worker_init(spec: PipelineSpec) -> None:
    global _worker_pipeline, _worker_hook
    _worker_pipeline = spec.build()
    _worker_hook = _resolve_hook(spec.fault_hook)


def _extract_one(job: ExtractionJob) -> ExtractedDocument:
    pipeline = _worker_pipeline
    if pipeline is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("extraction worker used before initialization")
    if _worker_hook is not None:
        _worker_hook(job)
    document = pipeline.process(
        job.text, doc_id=job.doc_id, doc_date=job.date, source=job.source
    )
    context: Optional[List[str]] = (
        [w for s in document.sentences for w in s.sentence.words()]
        if document.triples
        else None
    )
    return ExtractedDocument(
        doc_id=job.doc_id, triples=document.triples, context_words=context
    )


def _extract_chunk(jobs: Sequence[ExtractionJob]) -> List[ExtractedDocument]:
    """One IPC round trip extracts a whole slice of the batch — the
    per-job submit/pickle overhead would otherwise rival the extraction
    itself on short documents."""
    return [_extract_one(job) for job in jobs]


class _PoolBroken(Exception):
    """Internal: the pool broke at submission-order index ``index``."""

    def __init__(self, index: int, job: ExtractionJob, cause: BaseException) -> None:
        super().__init__(f"pool broke at document index {index}")
        self.index = index
        self.job = job
        self.cause = cause


class ParallelExtractor:
    """A reusable process pool extracting documents in submission order.

    Args:
        spec: Pipeline configuration replicated into every worker.
        workers: Pool size (>= 1).
        mp_context: Multiprocessing start method; *spawn* by default
            because the parent may hold live threads.
    """

    def __init__(
        self, spec: PipelineSpec, workers: int, mp_context: str = "spawn"
    ) -> None:
        if workers < 1:
            raise ConfigError(f"extraction pool needs workers >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self._mp_context = mp_context
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def extract_many(self, jobs: Sequence[ExtractionJob]) -> List[ExtractedDocument]:
        """Extract every job, results in submission order.

        A broken pool (worker death) is respawned and the whole batch
        retried once — extraction is pure, so the retry is safe.  A
        second break raises :class:`~repro.errors.ExtractionError`.
        """
        job_list = list(jobs)
        if not job_list:
            return []
        try:
            return self._run(job_list)
        except _PoolBroken:
            self.close()  # discard the broken pool; retry on a fresh one
        try:
            return self._run(job_list)
        except _PoolBroken as broken:
            self.close()
            raise ExtractionError(
                doc_index=broken.index, doc_id=broken.job.doc_id
            ) from broken.cause

    def _run(self, jobs: List[ExtractionJob]) -> List[ExtractedDocument]:
        pool = self._ensure_pool()
        # Chunked fan-out: ~4 chunks per worker balances load (chunks
        # vary in cost) against IPC round trips (each costs a pickle of
        # jobs out and triples back).
        size = max(1, -(-len(jobs) // (self.workers * 4)))
        chunks = [jobs[i : i + size] for i in range(0, len(jobs), size)]
        starts = [i for i in range(0, len(jobs), size)]
        futures: List[Future[List[ExtractedDocument]]] = []
        try:
            for chunk in chunks:
                futures.append(pool.submit(_extract_chunk, chunk))
        except (BrokenExecutor, RuntimeError) as exc:
            # submit() itself fails once the pool has broken
            start = starts[len(futures)]
            raise _PoolBroken(start, jobs[start], exc)
        results: List[ExtractedDocument] = []
        for index, future in enumerate(futures):
            try:
                results.extend(future.result())
            except BrokenExecutor as exc:
                # The chunk died somewhere; name its first document
                # (the first result that was certainly lost).
                start = starts[index]
                raise _PoolBroken(start, jobs[start], exc)
        return results

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(self._mp_context),
                initializer=_worker_init,
                initargs=(self.spec,),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down; the next batch lazily respawns it."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelExtractor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
