"""End-to-end NLP pipeline: text in, dated raw triples out (paper §3.2).

``NlpPipeline`` chains sentence splitting, tagging, chunking, NER,
coreference and the two extractors, applying the paper's heuristics:
pronoun/nominal arguments are replaced by their representative entity
before triples are emitted, and each triple is stamped with the most
specific date available (sentence-level mention, else document date).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nlp.chunker import Chunk, chunk_sentence
from repro.nlp.coref import CorefResolver
from repro.nlp.dates import SimpleDate, extract_dates
from repro.nlp.ner import EntityMention, NamedEntityRecognizer
from repro.nlp.openie import Extraction, OpenIEExtractor
from repro.nlp.pos import PosTagger
from repro.nlp.srl import SrlExtractor, SrlFrame
from repro.nlp.tokenizer import Sentence, sentence_split
from repro.nlp.tokenizer import Token


@dataclass
class RawTriple:
    """A dated, provenance-carrying triple straight out of extraction.

    This is the unit that flows into §3.3's mapping stage.

    Attributes:
        subject: Resolved subject text.
        relation: Raw relation phrase (OpenIE) or frame relation (SRL).
        object: Resolved object text.
        date: Best-known date for the fact (sentence date, else document
            date, else ``None``).
        doc_id: Source document id.
        sentence_index: Sentence position inside the document.
        confidence: Extractor confidence in (0, 1).
        extractor: ``"openie"`` or ``"srl"``.
        subject_label: NER label covering the subject head, if any.
        object_label: NER label covering the object head, if any.
        negated: Negation flag.
        source: Source name (newspaper/site), carried for trust tracking.
    """

    subject: str
    relation: str
    object: str
    date: Optional[SimpleDate] = None
    doc_id: str = ""
    sentence_index: int = 0
    confidence: float = 0.5
    extractor: str = "openie"
    subject_label: Optional[str] = None
    object_label: Optional[str] = None
    negated: bool = False
    source: str = ""

    def as_tuple(self) -> Tuple[str, str, str]:
        return (self.subject, self.relation, self.object)

    def __str__(self) -> str:  # pragma: no cover - display helper
        date = f"[{self.date}] " if self.date else ""
        return f"{date}({self.subject}; {self.relation}; {self.object})"


@dataclass
class AnnotatedSentence:
    """All annotations for one sentence."""

    sentence: Sentence
    tags: List[str]
    chunks: List[Chunk]
    mentions: List[EntityMention]
    substitutions: Dict[int, str]
    dates: List[Tuple[SimpleDate, int, int]]
    extractions: List[Extraction] = field(default_factory=list)
    frames: List[SrlFrame] = field(default_factory=list)


@dataclass
class Document:
    """A processed document."""

    doc_id: str
    text: str
    date: Optional[SimpleDate]
    source: str
    sentences: List[AnnotatedSentence] = field(default_factory=list)
    triples: List[RawTriple] = field(default_factory=list)


class NlpPipeline:
    """Configurable extraction pipeline.

    Args:
        gazetteer: alias (lowercase) -> NER label, typically from the KB.
        kb_aliases: alias (lowercase) -> canonical entity id.
        use_srl: Also run the frame-lexicon SRL extractor.
        use_coref: Resolve pronouns/nominals before emitting triples.
        min_confidence: Drop triples scored below this.
    """

    def __init__(
        self,
        gazetteer: Optional[Dict[str, str]] = None,
        kb_aliases: Optional[Dict[str, str]] = None,
        use_srl: bool = True,
        use_coref: bool = True,
        min_confidence: float = 0.0,
    ) -> None:
        self.tagger = PosTagger()
        self.ner = NamedEntityRecognizer(gazetteer=gazetteer, kb_aliases=kb_aliases)
        self.openie = OpenIEExtractor()
        self.srl = SrlExtractor() if use_srl else None
        self.use_coref = use_coref
        self.min_confidence = min_confidence

    def process(
        self,
        text: str,
        doc_id: str = "",
        doc_date: Optional[SimpleDate] = None,
        source: str = "",
    ) -> Document:
        """Annotate a document and extract its triples."""
        document = Document(doc_id=doc_id, text=text, date=doc_date, source=source)
        resolver = CorefResolver() if self.use_coref else None

        for sentence in sentence_split(text):
            tags = self.tagger.tag(sentence.tokens)
            chunks = chunk_sentence(sentence.tokens, tags)
            mentions = self.ner.recognize(sentence.tokens, tags)
            substitutions: Dict[int, str] = {}
            if resolver is not None:
                substitutions = resolver.observe_sentence(
                    sentence.index, sentence.tokens, tags, mentions
                )
            dates = extract_dates(sentence.tokens)
            annotated = AnnotatedSentence(
                sentence=sentence,
                tags=tags,
                chunks=chunks,
                mentions=mentions,
                substitutions=substitutions,
                dates=dates,
            )
            annotated.extractions = self.openie.extract(
                sentence.tokens, tags, mentions, chunks
            )
            if self.srl is not None:
                annotated.frames = self.srl.extract(
                    sentence.tokens, tags, mentions, chunks
                )
            document.sentences.append(annotated)
            self._emit_triples(document, annotated)
        return document

    def extract_triples(
        self,
        text: str,
        doc_id: str = "",
        doc_date: Optional[SimpleDate] = None,
        source: str = "",
    ) -> List[RawTriple]:
        """Convenience wrapper returning only the triples."""
        return self.process(text, doc_id, doc_date, source).triples

    # ------------------------------------------------------------------
    def _emit_triples(self, document: Document, annotated: AnnotatedSentence) -> None:
        sentence_date = annotated.dates[0][0] if annotated.dates else None
        date = sentence_date or document.date
        seen: set = set()

        for extraction in annotated.extractions:
            subject = self._resolve_span(annotated, extraction.arg1_span, extraction.arg1)
            obj = self._resolve_span(annotated, extraction.arg2_span, extraction.arg2)
            triple = RawTriple(
                subject=subject,
                relation=extraction.relation,
                object=obj,
                date=date,
                doc_id=document.doc_id,
                sentence_index=annotated.sentence.index,
                confidence=extraction.confidence,
                extractor="openie",
                subject_label=self._label_for_span(annotated, extraction.arg1_span),
                object_label=self._label_for_span(annotated, extraction.arg2_span),
                negated=extraction.negated,
                source=document.source,
            )
            if triple.confidence >= self.min_confidence:
                key = (triple.subject, triple.relation, triple.object)
                if key not in seen:
                    seen.add(key)
                    document.triples.append(triple)

        for frame in annotated.frames:
            subject = self._resolve_text(annotated, frame.roles.get("A0", ""))
            for agent, relation, argument in frame.triples():
                del agent  # A0 resolved above; frame.triples repeats it
                triple = RawTriple(
                    subject=subject,
                    relation=relation,
                    object=self._resolve_text(annotated, argument),
                    date=date,
                    doc_id=document.doc_id,
                    sentence_index=annotated.sentence.index,
                    confidence=frame.confidence,
                    extractor="srl",
                    negated=frame.negated,
                    source=document.source,
                )
                if triple.confidence >= self.min_confidence:
                    key = (triple.subject, triple.relation, triple.object, "srl")
                    if key not in seen:
                        seen.add(key)
                        document.triples.append(triple)

    def _resolve_span(
        self, annotated: AnnotatedSentence, span: Tuple[int, int], fallback: str
    ) -> str:
        """Apply coref substitutions to an argument span."""
        if not annotated.substitutions:
            return fallback
        start, end = span
        words: List[str] = []
        changed = False
        for i in range(start, end):
            if i in annotated.substitutions:
                replacement = annotated.substitutions[i]
                changed = True
                if replacement:
                    words.append(replacement)
            else:
                words.append(annotated.sentence.tokens[i].text)
        return " ".join(w for w in words if w) if changed else fallback

    def _resolve_text(self, annotated: AnnotatedSentence, text: str) -> str:
        """Resolve a free-text argument via substitutions on exact match."""
        if not annotated.substitutions or not text:
            return text
        tokens = annotated.sentence.tokens
        words = text.split()
        for i in range(len(tokens) - len(words) + 1):
            if [t.text for t in tokens[i : i + len(words)]] == words:
                return self._resolve_span(annotated, (i, i + len(words)), text)
        return text

    def _label_for_span(
        self, annotated: AnnotatedSentence, span: Tuple[int, int]
    ) -> Optional[str]:
        start, end = span
        for mention in annotated.mentions:
            if mention.start < end and start < mention.end:
                return mention.label
        return None
