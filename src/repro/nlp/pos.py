"""Part-of-speech tagging: lexicon lookup, suffix/shape guessing, and a
small set of Brill-style contextual repair rules.

The tagset is the Penn Treebank subset that the chunker and extractors
need: ``DT NN NNS NNP NNPS PRP PRP$ VB VBD VBG VBN VBP VBZ MD IN TO CC
JJ JJR JJS RB CD POS EX SYM PUNCT``.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.nlp.lexicon import build_lexicon
from repro.nlp.tokenizer import Token

_PUNCT_RE = re.compile(r"[^\w$%]")

NOUN_TAGS = {"NN", "NNS", "NNP", "NNPS"}
VERB_TAGS = {"VB", "VBD", "VBG", "VBN", "VBP", "VBZ"}


class PosTagger:
    """Deterministic POS tagger.

    Three stages: (1) lexicon lookup on the lowercased form, (2) shape
    and suffix heuristics for unknown words, (3) contextual repair rules
    that fix the classic noun/verb ambiguities using neighbouring tags.
    """

    def __init__(self) -> None:
        self._lexicon = build_lexicon()

    def tag(self, tokens: Sequence[Token]) -> List[str]:
        """Return one tag per token."""
        tags = [self._initial_tag(token, i, tokens) for i, token in enumerate(tokens)]
        self._apply_context_rules(tokens, tags)
        return tags

    # ------------------------------------------------------------------
    # stage 1 + 2
    # ------------------------------------------------------------------
    def _initial_tag(self, token: Token, index: int, tokens: Sequence[Token]) -> str:
        text = token.text
        lower = token.lower

        if text == "'s":
            return "POS"
        if token.is_currency() or text in "$€£":
            return "SYM"
        if token.is_numeric():
            return "CD"
        if _PUNCT_RE.fullmatch(text[0]) and len(text.strip(".-!?,;:()'\"")) == 0:
            return "PUNCT"

        known = self._lexicon.get(lower)
        if known is not None:
            # Capitalised mid-sentence words keep proper-noun status even
            # when the lowercase form is in the lexicon ("May", "Apple").
            if token.is_capitalized() and index > 0 and known not in {"NNP"}:
                prev = tokens[index - 1].text
                if prev not in {'"', "("} and known in {"NN", "JJ", "VB"}:
                    return "NNP"
            return known

        return self._guess_tag(token, index)

    def _guess_tag(self, token: Token, index: int) -> str:
        text = token.text
        lower = token.lower
        if token.is_capitalized():
            # Unknown capitalised words in news text are overwhelmingly
            # proper nouns, sentence-initially too (known common words were
            # caught by the lexicon already).
            return "NNP"
        if text[0].isdigit() and any(c.isalpha() for c in text):
            return "NNP"  # 3D, 747s, 5G
        if lower.endswith("ly"):
            return "RB"
        if lower.endswith(("ing",)):
            return "VBG"
        if lower.endswith(("ed",)):
            return "VBD"
        if lower.endswith(("tion", "sion", "ment", "ness", "ity", "ship", "ism", "ance", "ence", "er", "or", "ist")):
            return "NN"
        if lower.endswith(("ous", "ful", "ive", "able", "ible", "al", "ic", "ish")):
            return "JJ"
        if lower.endswith("est"):
            return "JJS"
        if lower.endswith("s") and not lower.endswith("ss"):
            return "NNS"
        return "NN"

    # ------------------------------------------------------------------
    # stage 3: contextual repairs
    # ------------------------------------------------------------------
    def _apply_context_rules(self, tokens: Sequence[Token], tags: List[str]) -> None:
        n = len(tags)
        for i in range(n):
            lower = tokens[i].lower
            prev_tag = tags[i - 1] if i > 0 else None
            prev_lower = tokens[i - 1].lower if i > 0 else ""

            # "May"/"March" as months: capitalised modal/verb followed by a
            # number or preceded by a preposition is a month name.
            if (
                lower in {"may", "march"}
                and tokens[i].is_capitalized()
                and (
                    (i + 1 < n and tags[i + 1] == "CD")
                    or prev_tag in {"IN", "TO"}
                )
            ):
                tags[i] = "NNP"
                continue

            # DT/JJ/PRP$ + verb-tagged word -> noun ("the use", "its plan").
            if tags[i] in {"VB", "VBP"} and prev_tag in {"DT", "JJ", "PRP$", "POS"}:
                tags[i] = "NN"
            # MD + noun-tagged base verb -> verb ("will launch").
            elif tags[i] == "NN" and prev_tag == "MD" and lower in self._lexicon and self._lexicon[lower] == "VB":
                tags[i] = "VB"
            # TO + ambiguous -> base verb ("to test", "to market").
            elif prev_tag == "TO" and tags[i] in {"NN", "VBP"}:
                if lower in self._lexicon and self._lexicon[lower] in {"VB", "NN"}:
                    tags[i] = "VB"
            # has/have/had + VBD -> VBN ("has acquired").
            elif tags[i] == "VBD" and prev_lower in {"has", "have", "had"}:
                tags[i] = "VBN"
            # be-form + VBD -> VBN (passive: "was acquired").
            elif tags[i] == "VBD" and prev_lower in {"is", "are", "was", "were", "been", "be"}:
                tags[i] = "VBN"

            # Regular -s verb after a subject-ish tag: "DJI manufactures
            # drones" — NNS right after NNP/PRP where the stem is a verb.
            if (
                tags[i] == "NNS"
                and prev_tag in {"NNP", "NNPS", "PRP"}
                and self._stem_is_verb(lower)
            ):
                tags[i] = "VBZ"
            # VB directly after a 3rd-person-singular subject -> VBP/VBZ.
            if tags[i] == "VB" and prev_tag in {"NNP", "PRP", "NN"}:
                tags[i] = "VBZ" if lower.endswith("s") else "VBP"

        # "that/which" after noun introduces a clause: keep IN (no change
        # needed); but sentence-initial "that" before a noun is DT.
        if n >= 2 and tokens[0].lower == "that" and tags[1] in NOUN_TAGS:
            tags[0] = "DT"

    def _stem_is_verb(self, lower: str) -> bool:
        if not lower.endswith("s"):
            return False
        for stem in (lower[:-1], lower[:-2] if lower.endswith("es") else None,
                     lower[:-3] + "y" if lower.endswith("ies") else None):
            if stem and self._lexicon.get(stem) == "VB":
                return True
        return False
