"""Lightweight NLP stack for triple extraction (paper §3.2).

The original NOUS uses off-the-shelf OpenIE, named-entity recognition,
co-reference resolution and semantic role labelling.  None of those are
available offline, so this package implements the whole chain from
scratch: a rule/lexicon tagger-chunker front end and two complementary
extractors (ReVerb-style OpenIE and verb-frame SRL) that emit the dated
raw triples shown in Figure 3 of the paper.
"""

from repro.nlp.tokenizer import Sentence, Token, sentence_split, tokenize
from repro.nlp.pos import PosTagger
from repro.nlp.chunker import Chunk, chunk_sentence
from repro.nlp.ner import EntityMention, NamedEntityRecognizer
from repro.nlp.coref import CorefResolver
from repro.nlp.dates import SimpleDate, extract_dates, parse_date
from repro.nlp.openie import OpenIEExtractor
from repro.nlp.srl import SrlExtractor
from repro.nlp.pipeline import AnnotatedSentence, Document, NlpPipeline, RawTriple

__all__ = [
    "Token",
    "Sentence",
    "tokenize",
    "sentence_split",
    "PosTagger",
    "Chunk",
    "chunk_sentence",
    "NamedEntityRecognizer",
    "EntityMention",
    "CorefResolver",
    "SimpleDate",
    "parse_date",
    "extract_dates",
    "OpenIEExtractor",
    "SrlExtractor",
    "NlpPipeline",
    "Document",
    "AnnotatedSentence",
    "RawTriple",
]
