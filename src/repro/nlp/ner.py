"""Named-entity recognition: gazetteer plus shape/cue rules.

The recogniser accepts an optional gazetteer (alias -> entity type) which
NOUS wires to the curated KB's alias dictionary — the paper's pipeline
similarly grounds NER in YAGO's entity inventory.  Unknown proper-noun
spans are classified by suffix cues (Inc., Robotics → ORG), honorifics
(Mr. → PERSON), and an embedded location list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.nlp.dates import extract_dates
from repro.nlp.lexicon import ORG_SUFFIXES, PERSON_TITLES
from repro.nlp.tokenizer import Token

# A small embedded location gazetteer (countries + major cities in the
# business-news domain).
_LOCATIONS = {
    "china", "united states", "u.s.", "france", "germany", "japan",
    "canada", "israel", "india", "russia", "brazil", "mexico",
    "united kingdom", "u.k.", "california", "texas", "washington",
    "new york", "seattle", "shenzhen", "beijing", "paris", "berlin",
    "london", "tokyo", "san francisco", "boston", "chicago", "austin",
    "richland", "europe", "asia", "africa", "silicon valley",
}

_MAGNITUDES = {"million", "billion", "trillion", "thousand"}


@dataclass
class EntityMention:
    """A typed entity mention with its token span (end exclusive)."""

    text: str
    label: str  # ORG | PERSON | LOCATION | PRODUCT | MONEY | DATE | PERCENT | MISC
    start: int
    end: int
    kb_hint: Optional[str] = None  # gazetteer-provided canonical id, if any

    def span(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start


class NamedEntityRecognizer:
    """Rule/gazetteer NER over tagged tokens.

    Args:
        gazetteer: Optional map from lowercase alias to entity type
            (``"ORG"``, ``"PERSON"``, ...).
        kb_aliases: Optional map from lowercase alias to canonical KB
            entity id; matches annotate mentions with ``kb_hint``.
    """

    def __init__(
        self,
        gazetteer: Optional[Dict[str, str]] = None,
        kb_aliases: Optional[Dict[str, str]] = None,
    ) -> None:
        self.gazetteer = {k.lower(): v for k, v in (gazetteer or {}).items()}
        self.kb_aliases = {k.lower(): v for k, v in (kb_aliases or {}).items()}
        self._max_gazetteer_len = max(
            (len(k.split()) for k in self.gazetteer), default=1
        )

    def recognize(
        self, tokens: Sequence[Token], tags: Sequence[str]
    ) -> List[EntityMention]:
        """Return non-overlapping entity mentions, leftmost-longest."""
        mentions: List[EntityMention] = []
        claimed = [False] * len(tokens)

        for date, start, end in extract_dates(tokens):
            mentions.append(
                EntityMention(
                    text=" ".join(t.text for t in tokens[start:end]),
                    label="DATE",
                    start=start,
                    end=end,
                )
            )
            for k in range(start, end):
                claimed[k] = True

        self._recognize_money(tokens, claimed, mentions)
        self._recognize_gazetteer(tokens, claimed, mentions)
        self._recognize_proper_spans(tokens, tags, claimed, mentions)
        mentions.sort(key=lambda m: m.start)
        return mentions

    # ------------------------------------------------------------------
    def _recognize_money(self, tokens, claimed, mentions) -> None:
        i = 0
        n = len(tokens)
        while i < n:
            if claimed[i]:
                i += 1
                continue
            token = tokens[i]
            if token.is_currency():
                end = i + 1
                if end < n and tokens[end].lower in _MAGNITUDES:
                    end += 1
                self._claim(tokens, claimed, mentions, i, end, "MONEY")
                i = end
                continue
            if token.text == "$" and i + 1 < n and tokens[i + 1].is_numeric():
                end = i + 2
                if end < n and tokens[end].lower in _MAGNITUDES:
                    end += 1
                self._claim(tokens, claimed, mentions, i, end, "MONEY")
                i = end
                continue
            if token.is_numeric() and token.text.endswith("%"):
                self._claim(tokens, claimed, mentions, i, i + 1, "PERCENT")
            elif (
                token.is_numeric()
                and i + 1 < n
                and tokens[i + 1].lower in {"percent", "%"}
            ):
                self._claim(tokens, claimed, mentions, i, i + 2, "PERCENT")
                i += 2
                continue
            i += 1

    def _recognize_gazetteer(self, tokens, claimed, mentions) -> None:
        n = len(tokens)
        max_len = min(self._max_gazetteer_len, 6)
        i = 0
        while i < n:
            if claimed[i]:
                i += 1
                continue
            matched = False
            for length in range(max_len, 0, -1):
                if i + length > n or any(claimed[i : i + length]):
                    continue
                phrase = " ".join(t.text for t in tokens[i : i + length]).lower()
                label = self.gazetteer.get(phrase)
                if label:
                    mention = self._claim(
                        tokens, claimed, mentions, i, i + length, label
                    )
                    mention.kb_hint = self.kb_aliases.get(phrase)
                    i += length
                    matched = True
                    break
            if not matched:
                i += 1

    def _recognize_proper_spans(self, tokens, tags, claimed, mentions) -> None:
        n = len(tokens)
        i = 0
        while i < n:
            if claimed[i] or tags[i] not in {"NNP", "NNPS"}:
                i += 1
                continue
            j = i
            while j < n and not claimed[j] and tags[j] in {"NNP", "NNPS", "CD"}:
                j += 1
            # Trim trailing CDs that aren't part of a name.
            while j > i and tags[j - 1] == "CD":
                j -= 1
            if j > i:
                label = self._classify_span(tokens, i, j)
                self._claim(tokens, claimed, mentions, i, j, label)
                i = j
            else:
                i += 1

    def _classify_span(self, tokens, start, end) -> str:
        words = [tokens[k].lower for k in range(start, end)]
        phrase = " ".join(words)
        if phrase in _LOCATIONS or words[-1] in _LOCATIONS:
            return "LOCATION"
        if words[-1].rstrip(".") in {s.rstrip(".") for s in ORG_SUFFIXES}:
            return "ORG"
        if words[0] in PERSON_TITLES:
            return "PERSON"
        # Single all-caps token (DJI, FAA) -> ORG.
        if end - start == 1 and tokens[start].text.isupper() and len(tokens[start].text) >= 2:
            return "ORG"
        # Two capitalised alpha words, neither an org cue -> PERSON-ish,
        # but default multiword names in business text to ORG when a
        # known org-word appears.
        if end - start >= 2 and all(w.isalpha() for w in words):
            return "ORG" if any(w in ORG_SUFFIXES for w in words) else "PERSON"
        return "ORG"

    def _claim(self, tokens, claimed, mentions, start, end, label) -> EntityMention:
        mention = EntityMention(
            text=" ".join(t.text for t in tokens[start:end]),
            label=label,
            start=start,
            end=end,
        )
        for k in range(start, end):
            claimed[k] = True
        mentions.append(mention)
        return mention
