"""Verb-frame semantic role labelling (SRL-lite).

The appendix of the paper (Figure 3) shows triples produced "using
Semantic Role Labeling".  This module implements a frame-lexicon SRL:
for verbs with known frames it assigns PropBank-flavoured roles — A0
(agent), A1 (patient/theme) and a small set of modifier roles resolved
through the verb's preferred prepositions (price, source, purpose,
location, time, partner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.nlp.chunker import Chunk, chunk_sentence
from repro.nlp.lexicon import verb_lemma
from repro.nlp.openie import OpenIEExtractor
from repro.nlp.tokenizer import Token

# Frame lexicon: verb lemma -> {'object_role': role of the direct object,
# 'preps': preposition -> role}.
FRAMES: Dict[str, Dict] = {
    "acquire": {"object_role": "A1", "preps": {"for": "AM-PRICE", "from": "A2-SOURCE", "in": "AM-TMP"}},
    "buy": {"object_role": "A1", "preps": {"for": "AM-PRICE", "from": "A2-SOURCE"}},
    "purchase": {"object_role": "A1", "preps": {"for": "AM-PRICE", "from": "A2-SOURCE"}},
    "raise": {"object_role": "A1", "preps": {"from": "A2-SOURCE", "in": "AM-TMP", "at": "AM-VALUATION"}},
    "invest": {"object_role": None, "preps": {"in": "A1", "with": "A2-PARTNER"}},
    "use": {"object_role": "A1", "preps": {"for": "AM-PNC", "in": "AM-LOC", "to": "AM-PNC"}},
    "employ": {"object_role": "A1", "preps": {"for": "AM-PNC", "to": "AM-PNC"}},
    "deploy": {"object_role": "A1", "preps": {"in": "AM-LOC", "for": "AM-PNC", "to": "AM-PNC"}},
    "launch": {"object_role": "A1", "preps": {"in": "AM-TMP", "at": "AM-LOC"}},
    "unveil": {"object_role": "A1", "preps": {"at": "AM-LOC", "in": "AM-TMP"}},
    "announce": {"object_role": "A1", "preps": {"in": "AM-TMP", "at": "AM-LOC"}},
    "release": {"object_role": "A1", "preps": {"in": "AM-TMP"}},
    "partner": {"object_role": None, "preps": {"with": "A1", "on": "A2-TOPIC"}},
    "merge": {"object_role": None, "preps": {"with": "A1"}},
    "sue": {"object_role": "A1", "preps": {"over": "A2-TOPIC", "for": "A2-TOPIC"}},
    "ban": {"object_role": "A1", "preps": {"in": "AM-LOC", "from": "A2-SCOPE"}},
    "approve": {"object_role": "A1", "preps": {"for": "A2-SCOPE", "in": "AM-TMP"}},
    "hire": {"object_role": "A1", "preps": {"as": "A2-ROLE", "from": "A2-SOURCE"}},
    "manufacture": {"object_role": "A1", "preps": {"in": "AM-LOC", "for": "A2-CLIENT"}},
    "sell": {"object_role": "A1", "preps": {"to": "A2-BUYER", "for": "AM-PRICE", "in": "AM-LOC"}},
    "test": {"object_role": "A1", "preps": {"in": "AM-LOC", "for": "AM-PNC"}},
    "develop": {"object_role": "A1", "preps": {"for": "A2-CLIENT", "with": "A2-PARTNER"}},
    "supply": {"object_role": "A1", "preps": {"to": "A2-BUYER"}},
    "deliver": {"object_role": "A1", "preps": {"to": "A2-BUYER", "in": "AM-LOC", "by": "AM-TMP"}},
    "regulate": {"object_role": "A1", "preps": {"in": "AM-LOC"}},
    "fund": {"object_role": "A1", "preps": {"with": "AM-PRICE"}},
    "value": {"object_role": "A1", "preps": {"at": "AM-VALUATION"}},
    "crash": {"object_role": None, "preps": {"in": "AM-LOC", "near": "AM-LOC", "during": "AM-TMP"}},
    "operate": {"object_role": "A1", "preps": {"in": "AM-LOC"}},
    "expand": {"object_role": "A1", "preps": {"into": "A2-SCOPE", "in": "AM-LOC"}},
    "open": {"object_role": "A1", "preps": {"in": "AM-LOC"}},
    "win": {"object_role": "A1", "preps": {"from": "A2-SOURCE"}},
    "sign": {"object_role": "A1", "preps": {"with": "A2-PARTNER"}},
    "file": {"object_role": "A1", "preps": {"against": "A2-TARGET", "in": "AM-LOC"}},
    "introduce": {"object_role": "A1", "preps": {"in": "AM-TMP", "at": "AM-LOC"}},
}


@dataclass
class SrlFrame:
    """A predicate with its filled roles.

    Attributes:
        verb: Verb lemma (the frame's predicate).
        roles: Role name -> argument text; always contains ``A0``.
        negated: Verb group negation flag.
        confidence: Heuristic confidence inherited from extraction.
    """

    verb: str
    roles: Dict[str, str] = field(default_factory=dict)
    negated: bool = False
    confidence: float = 0.6

    def triples(self) -> List[tuple]:
        """Flatten into ``(A0, verb[:role], argument)`` triples."""
        agent = self.roles.get("A0")
        if agent is None:
            return []
        out = []
        for role, text in self.roles.items():
            if role == "A0":
                continue
            relation = self.verb if role == "A1" else f"{self.verb}:{role.lower()}"
            out.append((agent, relation, text))
        return out


class SrlExtractor:
    """Frame-lexicon SRL built on the OpenIE chunk machinery.

    Only sentences whose main verb has a frame produce output; everything
    else is left to plain OpenIE.  This mirrors how NOUS combines both
    extractors (Figure 3 shows SRL-derived rows, §3.2 describes OpenIE).
    """

    def __init__(self) -> None:
        self._openie = OpenIEExtractor(emit_nary_binaries=False)

    def extract(
        self,
        tokens: Sequence[Token],
        tags: Sequence[str],
        mentions: Sequence = (),
        chunks: Optional[Sequence[Chunk]] = None,
    ) -> List[SrlFrame]:
        """Extract SRL frames from one tagged sentence."""
        if chunks is None:
            chunks = chunk_sentence(tokens, tags)
        frames: List[SrlFrame] = []
        for extraction in self._openie.extract(tokens, tags, mentions, chunks):
            frame_def = FRAMES.get(extraction.verb)
            if frame_def is None:
                continue
            roles: Dict[str, str] = {"A0": extraction.arg1}
            relation_words = extraction.relation.split()
            folded_prep = relation_words[-1] if len(relation_words) > 1 else None

            object_role = frame_def["object_role"]
            if folded_prep and folded_prep in frame_def["preps"]:
                roles[frame_def["preps"][folded_prep]] = extraction.arg2
            elif object_role is not None:
                roles[object_role] = extraction.arg2

            for prep, text in extraction.extra_args:
                role = frame_def["preps"].get(prep)
                if role is not None and role not in roles:
                    roles[role] = text

            # Purpose clause: "uses drones to capture aerial photos" —
            # OpenIE folds "to capture" chains into extras when possible;
            # also scan for to+VB after the object.
            purpose = self._purpose_clause(tokens, tags, extraction.arg2_span[1])
            if purpose and "AM-PNC" in frame_def["preps"].values() and "AM-PNC" not in roles:
                roles["AM-PNC"] = purpose

            if len(roles) > 1:
                frames.append(
                    SrlFrame(
                        verb=extraction.verb,
                        roles=roles,
                        negated=extraction.negated,
                        confidence=min(0.95, extraction.confidence + 0.1),
                    )
                )
        return frames

    def _purpose_clause(
        self, tokens: Sequence[Token], tags: Sequence[str], start: int
    ) -> Optional[str]:
        """Capture "to <verb> <rest>" immediately after the object."""
        n = len(tokens)
        if start >= n or tokens[start].lower != "to":
            return None
        if start + 1 >= n or not tags[start + 1].startswith("VB"):
            return None
        words = [tokens[start + 1].text]
        i = start + 2
        while i < n and tags[i] not in {"PUNCT"} and tokens[i].lower not in {"and", "but"}:
            words.append(tokens[i].text)
            i += 1
        clause = " ".join(words).strip()
        return clause or None

    def known_verbs(self) -> List[str]:
        """Lemmas this extractor has frames for."""
        return sorted(FRAMES)


def frame_for(verb: str) -> Optional[Dict]:
    """Public lookup of the frame definition for a verb lemma."""
    return FRAMES.get(verb_lemma(verb))
