"""Embedded part-of-speech lexicon.

A compact lexicon of closed-class words plus the open-class vocabulary
that dominates business/technology news (the domain of the paper's WSJ
corpus and drone use case).  Words absent from the lexicon are tagged by
suffix/shape heuristics in :mod:`repro.nlp.pos`.
"""

from __future__ import annotations

from typing import Dict, Set

# ---------------------------------------------------------------------------
# Closed classes
# ---------------------------------------------------------------------------
DETERMINERS: Set[str] = {
    "the", "a", "an", "this", "that", "these", "those", "each", "every",
    "some", "any", "no", "all", "both", "another", "such",
}

PREPOSITIONS: Set[str] = {
    "in", "on", "at", "by", "for", "with", "about", "against", "between",
    "into", "through", "during", "before", "after", "above", "below",
    "from", "up", "down", "of", "off", "over", "under", "near", "since",
    "until", "within", "without", "across", "behind", "around", "among",
    "amid", "despite", "toward", "towards", "via", "per", "as", "like",
    "including",
}

PRONOUNS: Set[str] = {
    "i", "you", "he", "she", "it", "we", "they", "me", "him", "her",
    "us", "them", "itself", "himself", "herself", "themselves", "who",
    "whom",
}

POSSESSIVE_PRONOUNS: Set[str] = {"my", "your", "his", "its", "our", "their", "hers"}

CONJUNCTIONS: Set[str] = {"and", "or", "but", "nor", "yet", "so", "plus"}

SUBORDINATORS: Set[str] = {
    "because", "although", "though", "while", "whereas", "if", "unless",
    "that", "which", "when", "where", "whether",
}

MODALS: Set[str] = {
    "can", "could", "may", "might", "must", "shall", "should", "will",
    "would",
}

AUXILIARIES: Dict[str, str] = {
    "is": "VBZ", "are": "VBP", "was": "VBD", "were": "VBD", "be": "VB",
    "been": "VBN", "being": "VBG", "am": "VBP",
    "has": "VBZ", "have": "VBP", "had": "VBD", "having": "VBG",
    "does": "VBZ", "do": "VBP", "did": "VBD", "doing": "VBG", "done": "VBN",
}

# ---------------------------------------------------------------------------
# Open classes: verbs (base, -s, -ed, -ing irregulars included explicitly)
# ---------------------------------------------------------------------------
VERB_BASE: Set[str] = {
    "acquire", "announce", "approve", "ban", "begin", "build", "buy",
    "capture", "carry", "close", "come", "compete", "confirm", "crash",
    "create", "deliver", "demonstrate", "deploy", "design", "develop",
    "employ", "expand", "expect", "face", "fall", "file", "fly", "fund",
    "get", "give", "go", "grow", "hire", "hold", "include", "inspect",
    "introduce", "invest", "join", "launch", "lead", "leave", "license",
    "make", "manufacture", "monitor", "move", "offer", "open", "operate",
    "order", "partner", "pay", "plan", "produce", "propose", "provide",
    "purchase", "raise", "reach", "receive", "regulate", "release",
    "report", "require", "rise", "say", "secure", "see", "sell", "serve",
    "ship", "show", "sign", "start", "state", "sue", "supply", "support",
    "survey", "take", "test", "track", "trade", "unveil", "use", "value",
    "win", "work", "agree", "aim", "allow", "become", "call", "consider",
    "continue", "cut", "decline", "drop", "earn", "enter", "exceed",
    "fail", "focus", "gain", "help", "increase", "intend", "issue",
    "know", "list", "lose", "market", "merge", "name", "need", "note",
    "obtain", "own", "post", "prepare", "present", "push", "put", "quote",
    "rank", "rate", "reduce", "remain", "reveal", "review", "run", "seek",
    "set", "settle", "spend", "spin", "submit", "target", "tell", "think",
    "threaten", "total", "turn", "want", "warn", "write",
}

IRREGULAR_PAST: Dict[str, str] = {
    "acquired": "acquire", "announced": "announce", "began": "begin",
    "built": "build", "bought": "buy", "came": "come", "crashed": "crash",
    "fell": "fall", "flew": "fly", "got": "get", "gave": "give",
    "went": "go", "grew": "grow", "held": "hold", "led": "lead",
    "left": "leave", "made": "make", "paid": "pay", "raised": "raise",
    "reached": "reach", "rose": "rise", "said": "say", "saw": "see",
    "sold": "sell", "shipped": "ship", "showed": "show", "signed": "sign",
    "sued": "sue", "took": "take", "won": "win", "became": "become",
    "cut": "cut", "entered": "enter", "knew": "know", "lost": "lose",
    "ran": "run", "set": "set", "spent": "spend", "spun": "spin",
    "told": "tell", "thought": "think", "wrote": "write", "put": "put",
}

IRREGULAR_PARTICIPLE: Dict[str, str] = {
    "acquired": "acquire", "begun": "begin", "built": "build",
    "bought": "buy", "come": "come", "fallen": "fall", "flown": "fly",
    "gotten": "get", "given": "give", "gone": "go", "grown": "grow",
    "held": "hold", "led": "lead", "left": "leave", "made": "make",
    "paid": "pay", "risen": "rise", "seen": "see", "sold": "sell",
    "shown": "show", "taken": "take", "won": "win", "become": "become",
    "known": "know", "lost": "lose", "run": "run", "written": "write",
}

# ---------------------------------------------------------------------------
# Open classes: common nouns / adjectives / adverbs seen in business news
# ---------------------------------------------------------------------------
COMMON_NOUNS: Set[str] = {
    "acquisition", "agency", "agreement", "aircraft", "analyst", "article",
    "billion", "board", "business", "camera", "capital", "ceo", "chief",
    "city", "commerce", "company", "competitor", "consumer", "contract",
    "corporation", "country", "customer", "deal", "delivery", "demand",
    "development", "device", "director", "dollar", "drone", "drones",
    "economy", "employee", "enterprise", "executive", "farm", "firm",
    "flight", "founder", "fund", "funding", "government", "group",
    "growth", "hardware", "headquarters", "helicopter", "incident",
    "industry", "insurance", "investment", "investor", "lawsuit",
    "leader", "maker", "manufacturer", "market", "marketing", "media",
    "million", "model", "money", "month", "network", "news", "office",
    "operation", "operations", "opportunity", "partner", "partnership",
    "patent", "percent", "permit", "photo", "photos", "pilot", "plan",
    "platform", "police", "price", "product", "production", "profit",
    "program", "project", "property", "prototype", "quarter", "real",
    "regulation", "regulator", "report", "research", "revenue", "risk",
    "robot", "rule", "safety", "sale", "sales", "security", "sensor",
    "service", "share", "shares", "software", "spokesman", "spokesperson",
    "startup", "startups", "state", "statement", "stock", "strategy",
    "subsidiary", "supplier", "system", "technology", "test", "trend",
    "unit", "use", "valuation", "value", "vehicle", "venture", "video",
    "week", "year", "years", "estate", "application", "applications",
    "approval", "quadcopter", "aerial", "airspace", "fleet", "range",
    "battery", "deliveries", "listing", "listings", "surveillance",
    "inspection", "mapping", "imagery", "footage", "crops", "field",
    "site", "sites", "mission", "equipment",
}

ADJECTIVES: Set[str] = {
    "aerial", "agricultural", "american", "annual", "big", "chinese",
    "civilian", "commercial", "common", "consumer-grade", "corporate",
    "current", "digital", "domestic", "early", "emerging", "federal",
    "financial", "first", "foreign", "former", "french", "global", "good",
    "high", "industrial", "international", "large", "largest", "last",
    "late", "latest", "leading", "local", "low", "major", "military",
    "national", "new", "next", "novel", "official", "online", "popular",
    "previous", "private", "public", "quarterly", "recent", "regulatory",
    "remote", "residential", "rural", "safe", "second", "senior", "small",
    "strategic", "strong", "top", "total", "unmanned", "urban", "weekly",
    "autonomous", "key", "potential", "profitable", "rapid", "several",
    "significant", "third", "japanese", "german", "european", "british",
    "israeli", "canadian",
}

ADVERBS: Set[str] = {
    "also", "already", "always", "approximately", "currently", "early",
    "eventually", "finally", "further", "here", "however", "immediately",
    "initially", "just", "largely", "later", "meanwhile", "more", "most",
    "nearly", "never", "not", "now", "often", "only", "previously",
    "publicly", "quickly", "rapidly", "recently", "reportedly", "roughly",
    "sharply", "significantly", "soon", "still", "strongly", "then",
    "there", "today", "together", "tomorrow", "widely", "yesterday",
    "n't", "up", "well", "again", "abroad", "ahead", "far", "fast",
}

MONTHS: Set[str] = {
    "january", "february", "march", "april", "may", "june", "july",
    "august", "september", "october", "november", "december",
}

ORG_SUFFIXES: Set[str] = {
    "inc", "inc.", "corp", "corp.", "co", "co.", "ltd", "ltd.", "llc",
    "llc.", "group", "holdings", "technologies", "systems", "robotics",
    "labs", "ventures", "partners", "capital", "aviation", "aerospace",
    "industries", "enterprises", "solutions", "networks", "dynamics",
}

PERSON_TITLES: Set[str] = {
    "mr.", "mrs.", "ms.", "dr.", "prof.", "sen.", "gov.", "president",
    "ceo", "chairman", "founder", "director", "analyst", "secretary",
}


def build_lexicon() -> Dict[str, str]:
    """Compile the word -> tag lookup used by the tagger.

    Later entries do not override earlier ones, so ordering encodes
    priority (closed classes win over open classes).
    """
    lexicon: Dict[str, str] = {}

    def put(words, tag) -> None:
        for word in words:
            lexicon.setdefault(word, tag)

    put(MODALS, "MD")
    for word, tag in AUXILIARIES.items():
        lexicon.setdefault(word, tag)
    put(DETERMINERS, "DT")
    put(POSSESSIVE_PRONOUNS, "PRP$")
    put(PRONOUNS, "PRP")
    put(CONJUNCTIONS, "CC")
    put(PREPOSITIONS, "IN")
    put(SUBORDINATORS, "IN")
    lexicon["to"] = "TO"
    lexicon["there"] = "EX"
    put(ADVERBS, "RB")
    put(MONTHS, "NNP")
    put(VERB_BASE, "VB")
    for past in IRREGULAR_PAST:
        lexicon.setdefault(past, "VBD")
    for participle in IRREGULAR_PARTICIPLE:
        lexicon.setdefault(participle, "VBN")
    put(ADJECTIVES, "JJ")
    put(COMMON_NOUNS, "NN")
    return lexicon


def verb_lemma(word: str) -> str:
    """Best-effort lemma for a verb surface form."""
    lower = word.lower()
    if lower in IRREGULAR_PAST:
        return IRREGULAR_PAST[lower]
    if lower in IRREGULAR_PARTICIPLE:
        return IRREGULAR_PARTICIPLE[lower]
    if lower in VERB_BASE:
        return lower
    for suffix, replacement in (
        ("ies", "y"), ("ied", "y"), ("ying", "y"),
        ("sses", "ss"), ("ches", "ch"), ("shes", "sh"),
        ("ing", ""), ("ed", ""), ("es", ""), ("s", ""),
    ):
        if lower.endswith(suffix) and len(lower) > len(suffix) + 1:
            candidate = lower[: -len(suffix)] + replacement
            if candidate in VERB_BASE:
                return candidate
            # handle doubled consonants: planned -> plan
            if candidate and candidate[-1:] * 2 == candidate[-2:] and candidate[:-1] in VERB_BASE:
                return candidate[:-1]
            # handle e-drop: acquiring -> acquire
            if candidate + "e" in VERB_BASE:
                return candidate + "e"
    return lower
