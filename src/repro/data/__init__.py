"""Synthetic data substrate (paper §3.1's data sources).

The paper streams Wall Street Journal articles and web crawls; neither
corpus is redistributable, so this package generates an equivalent:
a seeded world model emits a dated event timeline over the domain KB,
each event is rendered into WSJ-style article text (with known gold
triples), and noisier "web crawl" variants exercise source-trust
handling.  Because gold facts are known, extraction/linking quality can
be *measured*, which the original demo paper never did.
"""

from repro.data.world import Event, WorldModel
from repro.data.articles import Article, ArticleRenderer
from repro.data.corpus import CorpusConfig, generate_corpus, stream_corpus
from repro.data.descriptions import generate_descriptions, topic_lexicons

__all__ = [
    "WorldModel",
    "Event",
    "Article",
    "ArticleRenderer",
    "CorpusConfig",
    "generate_corpus",
    "stream_corpus",
    "generate_descriptions",
    "topic_lexicons",
]
