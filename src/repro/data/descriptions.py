"""Synthetic entity description documents (the Wikipedia-page stand-in).

§3.6 of the paper assigns every entity a topic distribution by running
LDA over the "document-term matrix" built from per-entity text (e.g. the
entity's Wikipedia page).  Offline we generate those documents from
topic lexicons keyed by what the entity *does* in the KB, so LDA can
recover interpretable topics and path coherence has signal to exploit.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.kb.knowledge_base import KnowledgeBase

# Topic lexicons: coherent vocabularies for the domain's themes.
_TOPIC_LEXICONS: Dict[str, List[str]] = {
    "drones": [
        "drone", "quadcopter", "flight", "aerial", "rotor", "pilot",
        "airspace", "altitude", "payload", "propeller", "gimbal", "uav",
        "autopilot", "hover", "battery", "camera",
    ],
    "finance": [
        "funding", "investment", "venture", "capital", "valuation",
        "round", "investor", "equity", "portfolio", "acquisition",
        "revenue", "profit", "shares", "ipo", "stake", "billion",
    ],
    "regulation": [
        "regulation", "safety", "rules", "agency", "compliance",
        "approval", "license", "policy", "federal", "restriction",
        "certification", "airspace", "permit", "law", "enforcement",
    ],
    "retail": [
        "delivery", "package", "warehouse", "logistics", "customer",
        "order", "shipping", "fulfillment", "commerce", "retail",
        "inventory", "marketplace", "store", "shopping",
    ],
    "realestate": [
        "property", "listing", "estate", "housing", "broker", "agent",
        "home", "residential", "mortgage", "buyer", "seller", "photos",
    ],
    "agriculture": [
        "crop", "farm", "field", "harvest", "soil", "irrigation",
        "yield", "agriculture", "imagery", "sensing", "mapping",
    ],
    "technology": [
        "software", "hardware", "sensor", "algorithm", "vision",
        "processing", "platform", "chip", "data", "autonomous",
        "navigation", "system", "engineering", "research",
    ],
}

# Map KB signals (industries, technologies, types) to topics.
_SIGNAL_TO_TOPIC = {
    "Drone_Industry": "drones",
    "Ecommerce_Industry": "retail",
    "Real_Estate_Industry": "realestate",
    "Aerial_Photography": "drones",
    "Computer_Vision": "technology",
    "Autonomous_Flight": "technology",
    "Package_Delivery": "retail",
    "Precision_Agriculture": "agriculture",
    "Agency": "regulation",
    "Person": "finance",
}

_INVESTORS = {"Accel_Partners", "Sequoia_Capital", "Kleiner_Perkins"}


def topic_lexicons() -> Dict[str, List[str]]:
    """The topic -> vocabulary map used by the generator (copy)."""
    return {k: list(v) for k, v in _TOPIC_LEXICONS.items()}


def _topics_for_entity(kb: KnowledgeBase, entity: str) -> List[str]:
    topics: List[str] = []
    if entity in _INVESTORS:
        topics.append("finance")
    entity_type = kb.entity_type(entity)
    if entity_type in _SIGNAL_TO_TOPIC:
        topics.append(_SIGNAL_TO_TOPIC[entity_type])
    for triple in kb.store.match(subject=entity):
        if triple.predicate in {"operatesIn", "usesTechnology", "develops", "basedOn"}:
            topic = _SIGNAL_TO_TOPIC.get(triple.object)
            if topic:
                topics.append(topic)
    if not topics:
        topics.append("technology")
    return topics


def generate_descriptions(
    kb: KnowledgeBase,
    words_per_doc: int = 60,
    seed: int = 13,
) -> Dict[str, str]:
    """Generate (and store) one description document per KB entity.

    The document mixes the entity's topics ~80/20 with background
    vocabulary, giving LDA recoverable structure.

    Returns:
        entity id -> document text (also written into the KB via
        :meth:`KnowledgeBase.set_description`, appended to any existing
        curated description).
    """
    rng = np.random.default_rng(seed)
    background = [w for words in _TOPIC_LEXICONS.values() for w in words]
    documents: Dict[str, str] = {}
    for entity in sorted(kb.entities()):
        topics = _topics_for_entity(kb, entity)
        words: List[str] = []
        for _ in range(words_per_doc):
            if rng.random() < 0.8:
                topic = topics[int(rng.integers(len(topics)))]
                lexicon = _TOPIC_LEXICONS[topic]
                words.append(lexicon[int(rng.integers(len(lexicon)))])
            else:
                words.append(background[int(rng.integers(len(background)))])
        document = " ".join(words)
        existing = kb.description(entity)
        combined = f"{existing} {document}".strip()
        kb.set_description(entity, combined)
        documents[entity] = combined
    return documents
