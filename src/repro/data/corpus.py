"""Corpus assembly: dated article streams over the world model.

``generate_corpus`` produces the whole corpus eagerly (for tests and
benches); ``stream_corpus`` yields articles in date order, which is how
the NOUS pipeline consumes them (§1: "data arrives in streaming
fashion").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.data.articles import Article, ArticleRenderer
from repro.data.world import WorldModel
from repro.errors import ConfigError
from repro.kb.knowledge_base import KnowledgeBase


@dataclass
class CorpusConfig:
    """Knobs for synthetic corpus generation.

    Attributes:
        n_articles: Number of articles (== events).
        seed: Master seed; world population, events and rendering all
            derive from it.
        n_extra_companies: Synthetic companies to add to the KB.
        start_year / end_year: Timeline bounds.
        crawl_fraction: Fraction of articles attributed to noisy crawl
            sources instead of the WSJ.
        crawl_noise: Noise level inside crawl articles.
    """

    n_articles: int = 200
    seed: int = 7
    n_extra_companies: int = 12
    start_year: int = 2010
    end_year: int = 2015
    crawl_fraction: float = 0.3
    crawl_noise: float = 0.5

    def validate(self) -> None:
        if self.n_articles < 1:
            raise ConfigError("n_articles must be >= 1")
        if not 0.0 <= self.crawl_fraction <= 1.0:
            raise ConfigError("crawl_fraction must be in [0, 1]")


def generate_corpus(
    kb: KnowledgeBase, config: Optional[CorpusConfig] = None
) -> List[Article]:
    """Generate a dated, sorted synthetic corpus over ``kb``.

    The KB is extended in place with the world model's synthetic
    entities (they are part of the "curated" world the articles assume).
    """
    config = config or CorpusConfig()
    config.validate()
    world = WorldModel(
        kb,
        seed=config.seed,
        n_extra_companies=config.n_extra_companies,
        start_year=config.start_year,
        end_year=config.end_year,
    )
    renderer = ArticleRenderer(kb, seed=config.seed + 1, crawl_noise=config.crawl_noise)
    rng = np.random.default_rng(config.seed + 2)
    articles: List[Article] = []
    for event in world.generate_events(config.n_articles):
        if rng.random() < config.crawl_fraction:
            source = renderer.CRAWL_SITES[
                int(rng.integers(len(renderer.CRAWL_SITES)))
            ]
        else:
            source = "wsj"
        articles.append(renderer.render(event, source=source))
    articles.sort(key=lambda a: (a.date.ordinal(), a.doc_id))
    return articles


def stream_corpus(
    kb: KnowledgeBase, config: Optional[CorpusConfig] = None
) -> Iterator[Article]:
    """Yield the corpus article by article in date order."""
    yield from generate_corpus(kb, config)
