"""Insider-threat domain (paper §3.1, data source 2).

NOUS's second named application is "insider threat detection using
various log data sources from enterprises".  Like bibliography data,
logs are structured: events become dated triples ingested directly via
``Nous.ingest_facts``.  The generator models an enterprise (users,
hosts, resources with sensitivity levels) under normal behaviour, then
plants an exfiltration campaign late in the timeline — a small set of
users logging into unusual hosts and bulk-accessing sensitive resources
— which surfaces as new frequent patterns in the sliding window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.ontology import Ontology
from repro.nlp.dates import SimpleDate

LOG_TYPES = [
    ("Agent", Ontology.ROOT),
    ("User", "Agent"),
    ("Host", Ontology.ROOT),
    ("Resource", Ontology.ROOT),
    ("SensitiveResource", "Resource"),
    ("Department", Ontology.ROOT),
]

LOG_PREDICATES = [
    ("loggedInto", "User", "Host"),
    ("accessed", "User", "Resource"),
    ("downloaded", "User", "Resource"),
    ("escalatedOn", "User", "Host"),
    ("memberOf", "User", "Department"),
    ("hostedOn", "Resource", "Host"),
]

DEPARTMENTS = ["engineering", "finance", "sales", "hr"]


def build_log_ontology() -> Ontology:
    """Ontology for the enterprise-log domain."""
    ontology = Ontology()
    ontology.bulk_add_types(LOG_TYPES)
    for name, domain, range_ in LOG_PREDICATES:
        ontology.add_predicate(name, domain=domain, range_=range_)
    return ontology


@dataclass
class LogBatch:
    """One day of log events as dated triples."""

    date: SimpleDate
    facts: List[Tuple[str, str, str]] = field(default_factory=list)
    source: str = "auth-logs"


class EnterpriseLogWorld:
    """Synthetic enterprise log generator with a planted insider campaign.

    Args:
        n_users / n_hosts / n_resources: World size.
        n_days: Length of the log timeline.
        seed: RNG seed.
        campaign_start: Fraction of the timeline after which the insider
            campaign runs (default: last 30%).
        n_insiders: Users participating in the campaign.
    """

    def __init__(
        self,
        n_users: int = 25,
        n_hosts: int = 8,
        n_resources: int = 15,
        n_days: int = 60,
        seed: int = 41,
        campaign_start: float = 0.7,
        n_insiders: int = 3,
    ) -> None:
        if n_users < 2 or n_hosts < 2 or n_resources < 2:
            raise ConfigError("need at least 2 users/hosts/resources")
        if not 0.0 < campaign_start < 1.0:
            raise ConfigError("campaign_start must be in (0, 1)")
        if n_insiders >= n_users:
            raise ConfigError("n_insiders must be < n_users")
        self.rng = np.random.default_rng(seed)
        self.n_users = n_users
        self.n_hosts = n_hosts
        self.n_resources = n_resources
        self.n_days = n_days
        self.campaign_start = campaign_start
        self.n_insiders = n_insiders
        self.users: List[str] = []
        self.hosts: List[str] = []
        self.resources: List[str] = []
        self.sensitive: List[str] = []
        self.insiders: List[str] = []
        self._home_host: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def populate_kb(self, kb: KnowledgeBase) -> None:
        """Register users, hosts, resources and static facts."""
        for d in DEPARTMENTS:
            kb.add_entity(f"dept_{d}", "Department", aliases=[d])
        for i in range(self.n_hosts):
            host = f"host_{i:02d}"
            kb.add_entity(host, "Host", aliases=[host])
            self.hosts.append(host)
        for i in range(self.n_resources):
            sensitive = i < self.n_resources // 3
            resource = f"res_{i:02d}"
            kb.add_entity(
                resource,
                "SensitiveResource" if sensitive else "Resource",
                aliases=[resource],
            )
            host = self.hosts[int(self.rng.integers(self.n_hosts))]
            kb.add_fact(resource, "hostedOn", host)
            self.resources.append(resource)
            if sensitive:
                self.sensitive.append(resource)
        for i in range(self.n_users):
            user = f"user_{i:03d}"
            kb.add_entity(user, "User", aliases=[user])
            department = DEPARTMENTS[int(self.rng.integers(len(DEPARTMENTS)))]
            kb.add_fact(user, "memberOf", f"dept_{department}")
            self._home_host[user] = self.hosts[int(self.rng.integers(self.n_hosts))]
            self.users.append(user)
        picks = self.rng.choice(self.n_users, size=self.n_insiders, replace=False)
        self.insiders = [self.users[int(i)] for i in picks]

    def generate_batches(self, kb: KnowledgeBase) -> List[LogBatch]:
        """One batch per day, campaign active in the late phase."""
        if not self.users:
            self.populate_kb(kb)
        batches: List[LogBatch] = []
        for day in range(self.n_days):
            date = SimpleDate(2016, 1 + day // 28, day % 28 + 1)
            facts: List[Tuple[str, str, str]] = []
            for user in self.users:
                facts.extend(self._normal_activity(user))
            if day / self.n_days >= self.campaign_start:
                for insider in self.insiders:
                    facts.extend(self._campaign_activity(insider))
            batches.append(LogBatch(date=date, facts=facts))
        return batches

    # ------------------------------------------------------------------
    def _normal_activity(self, user: str) -> List[Tuple[str, str, str]]:
        facts = [(user, "loggedInto", self._home_host[user])]
        if self.rng.random() < 0.6:
            resource = self.resources[int(self.rng.integers(self.n_resources))]
            facts.append((user, "accessed", resource))
        if self.rng.random() < 0.15:
            resource = self.resources[int(self.rng.integers(self.n_resources))]
            facts.append((user, "downloaded", resource))
        return facts

    def _campaign_activity(self, insider: str) -> List[Tuple[str, str, str]]:
        # Unusual host + sensitive access + bulk download + escalation:
        # the 2-edge patterns (accessed+downloaded on SensitiveResource)
        # become window-frequent only during the campaign.
        foreign_hosts = [h for h in self.hosts if h != self._home_host[insider]]
        host = foreign_hosts[int(self.rng.integers(len(foreign_hosts)))]
        facts = [(insider, "loggedInto", host), (insider, "escalatedOn", host)]
        for _ in range(2):
            resource = self.sensitive[int(self.rng.integers(len(self.sensitive)))]
            facts.append((insider, "accessed", resource))
            facts.append((insider, "downloaded", resource))
        return facts
