"""Generative world model: a dated event timeline over the domain KB.

Events are the ground truth.  Each event knows the canonical triples it
implies; the article renderer turns events into text, and evaluation
compares pipeline output against the event triples.

Regimes make streams *non-stationary* (the paper's motivation for
streaming mining): different phases of the timeline favour different
event types, so window-level frequent patterns change over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kb.knowledge_base import KnowledgeBase
from repro.nlp.dates import SimpleDate

EVENT_TYPES = (
    "funding",
    "acquisition",
    "launch",
    "deployment",
    "partnership",
    "regulation",
    "incident",
    "expansion",
)

# Default regime schedule: fractions of the timeline with their event-type
# weight profiles.  Early period: funding/launch heavy (startup boom);
# middle: deployments and partnerships; late: acquisitions + regulation
# (consolidation).  This produces the pattern drift Figure 7 shows.
DEFAULT_REGIMES: List[Tuple[float, Dict[str, float]]] = [
    (0.35, {"funding": 4, "launch": 3, "deployment": 1, "partnership": 1,
            "regulation": 0.5, "acquisition": 0.5, "incident": 0.5, "expansion": 1}),
    (0.35, {"funding": 1, "launch": 1, "deployment": 4, "partnership": 3,
            "regulation": 1, "acquisition": 1, "incident": 1, "expansion": 1}),
    (0.30, {"funding": 0.5, "launch": 0.5, "deployment": 1, "partnership": 1,
            "regulation": 3, "acquisition": 4, "incident": 2, "expansion": 1}),
]


@dataclass
class Event:
    """One world event with its canonical consequence triples.

    Attributes:
        event_type: One of :data:`EVENT_TYPES`.
        date: Event date.
        participants: Role name -> canonical entity id (or literal).
        triples: Gold ``(subject, predicate, object)`` triples implied.
    """

    event_type: str
    date: SimpleDate
    participants: Dict[str, str]
    triples: List[Tuple[str, str, str]] = field(default_factory=list)

    def key(self) -> Tuple:
        return (self.event_type, str(self.date), tuple(sorted(self.participants.items())))


class WorldModel:
    """Seeded generator of entities and events over a knowledge base.

    Args:
        kb: The curated KB to extend (typically :func:`build_drone_kb`).
        seed: RNG seed; everything downstream is deterministic in it.
        n_extra_companies: Synthetic companies added beyond the curated
            set, to scale workloads.
        start_year / end_year: Timeline bounds (inclusive).
    """

    FIRST_NAMES = ["Alex", "Jordan", "Morgan", "Riley", "Casey", "Taylor",
                   "Avery", "Quinn", "Dana", "Reese", "Kai", "Rowan"]
    LAST_NAMES = ["Chen", "Patel", "Novak", "Garcia", "Kim", "Okafor",
                  "Silva", "Mueller", "Rossi", "Tanaka", "Larsen", "Dubois"]
    COMPANY_STEMS = ["Aero", "Sky", "Hover", "Flight", "Cloud", "Drone",
                     "Air", "Nimbus", "Falcon", "Swift", "Zephyr", "Orbit"]
    COMPANY_SUFFIXES = ["Tech", "Works", "Labs", "Dynamics", "Systems",
                        "Robotics", "Aviation", "Industries"]
    PRODUCT_STEMS = ["Raptor", "Condor", "Swallow", "Kestrel", "Osprey",
                     "Harrier", "Merlin", "Heron", "Swift", "Eagle"]
    CITY_POOL = ["Seattle", "Berkeley", "Shenzhen", "Paris", "Danvers"]

    def __init__(
        self,
        kb: KnowledgeBase,
        seed: int = 7,
        n_extra_companies: int = 12,
        start_year: int = 2010,
        end_year: int = 2015,
    ) -> None:
        if end_year < start_year:
            raise ConfigError("end_year must be >= start_year")
        self.kb = kb
        self.rng = np.random.default_rng(seed)
        self.start_year = start_year
        self.end_year = end_year
        self.synthetic_companies: List[str] = []
        self.synthetic_people: List[str] = []
        self.synthetic_products: List[str] = []
        self._populate(n_extra_companies)

    # ------------------------------------------------------------------
    # synthetic population
    # ------------------------------------------------------------------
    def _populate(self, n_extra_companies: int) -> None:
        for i in range(n_extra_companies):
            stem = self.COMPANY_STEMS[int(self.rng.integers(len(self.COMPANY_STEMS)))]
            suffix = self.COMPANY_SUFFIXES[
                int(self.rng.integers(len(self.COMPANY_SUFFIXES)))
            ]
            company = f"{stem}{suffix}_{i}"
            display = f"{stem}{suffix}"
            self.kb.add_entity(
                company,
                "Company",
                aliases=[display, f"{display} {i}"],
                description=(
                    f"{display} is a startup in the drone industry developing "
                    f"unmanned aircraft and aerial data services."
                ),
            )
            self.kb.add_fact(company, "operatesIn", "Drone_Industry")
            city = self.CITY_POOL[int(self.rng.integers(len(self.CITY_POOL)))]
            self.kb.add_fact(company, "headquarteredIn", city)
            self.synthetic_companies.append(company)

            founder = self._make_person(i)
            self.kb.add_fact(company, "foundedBy", founder)
            self.kb.add_fact(founder, "ceoOf", company)

            product = self._make_product(i, company)
            self.kb.add_fact(company, "manufactures", product)
            self.kb.add_fact(product, "productOf", company)

    def _make_person(self, i: int) -> str:
        first = self.FIRST_NAMES[int(self.rng.integers(len(self.FIRST_NAMES)))]
        last = self.LAST_NAMES[int(self.rng.integers(len(self.LAST_NAMES)))]
        person = f"{first}_{last}_{i}"
        self.kb.add_entity(
            person, "Person", aliases=[f"{first} {last}"],
            description=f"{first} {last} is an entrepreneur in the drone industry.",
        )
        self.synthetic_people.append(person)
        return person

    def _make_product(self, i: int, company: str) -> str:
        stem = self.PRODUCT_STEMS[int(self.rng.integers(len(self.PRODUCT_STEMS)))]
        product = f"{stem}_{i}"
        self.kb.add_entity(
            product, "Product", aliases=[stem, f"{stem} {i}"],
            description=f"{stem} is a drone model made by {company.replace('_', ' ')}.",
        )
        self.synthetic_products.append(product)
        return product

    # ------------------------------------------------------------------
    # event timeline
    # ------------------------------------------------------------------
    def generate_events(
        self,
        n_events: int,
        regimes: Optional[List[Tuple[float, Dict[str, float]]]] = None,
    ) -> List[Event]:
        """Sample a dated, sorted event timeline.

        Args:
            n_events: Number of events.
            regimes: ``(fraction, weights)`` phases; defaults to
                :data:`DEFAULT_REGIMES`.
        """
        regimes = regimes if regimes is not None else DEFAULT_REGIMES
        total_fraction = sum(f for f, _ in regimes)
        if not 0.99 <= total_fraction <= 1.01:
            raise ConfigError("regime fractions must sum to 1.0")

        events: List[Event] = []
        dates = self._sorted_dates(n_events)
        position = 0
        for fraction, weights in regimes:
            count = int(round(fraction * n_events))
            count = min(count, n_events - position)
            profile = self._normalise(weights)
            for _ in range(count):
                event_type = self._choose(list(profile), list(profile.values()))
                events.append(self._make_event(event_type, dates[position]))
                position += 1
        while position < n_events:  # rounding remainder -> last regime
            profile = self._normalise(regimes[-1][1])
            event_type = self._choose(list(profile), list(profile.values()))
            events.append(self._make_event(event_type, dates[position]))
            position += 1
        return events

    def _sorted_dates(self, n: int) -> List[SimpleDate]:
        span_days = (self.end_year - self.start_year + 1) * 360
        offsets = np.sort(self.rng.integers(0, span_days, size=n))
        dates = []
        for offset in offsets:
            year = self.start_year + int(offset) // 360
            month = (int(offset) % 360) // 30 + 1
            day = (int(offset) % 30) + 1
            dates.append(SimpleDate(year=year, month=min(month, 12), day=min(day, 28)))
        return dates

    def _normalise(self, weights: Dict[str, float]) -> Dict[str, float]:
        total = sum(weights.values())
        return {k: v / total for k, v in weights.items()}

    def _choose(self, items: Sequence, probabilities: Sequence[float]):
        index = int(self.rng.choice(len(items), p=np.asarray(probabilities)))
        return items[index]

    # ------------------------------------------------------------------
    def _companies(self) -> List[str]:
        return sorted(self.kb.entities_of_type("Company"))

    def _make_event(self, event_type: str, date: SimpleDate) -> Event:
        maker = getattr(self, f"_event_{event_type}")
        return maker(date)

    def _pick_company(self, exclude: Tuple[str, ...] = ()) -> str:
        companies = [c for c in self._companies() if c not in exclude]
        return companies[int(self.rng.integers(len(companies)))]

    def _event_funding(self, date: SimpleDate) -> Event:
        company = self._pick_company()
        investors = sorted(
            self.kb.entities_of_type("Company")
            & {"Accel_Partners", "Sequoia_Capital", "Kleiner_Perkins", "Intel"}
        )
        investor = investors[int(self.rng.integers(len(investors)))]
        amount = int(self.rng.choice([10, 25, 30, 50, 75, 100, 150]))
        amount_text = f"${amount} million"
        return Event(
            event_type="funding",
            date=date,
            participants={"company": company, "investor": investor, "amount": amount_text},
            triples=[
                (company, "raisedFunding", amount_text),
                (company, "fundedBy", investor),
                (investor, "investsIn", company),
            ],
        )

    def _event_acquisition(self, date: SimpleDate) -> Event:
        acquirer = self._pick_company()
        target = self._pick_company(exclude=(acquirer,))
        price = int(self.rng.choice([120, 250, 400, 775, 1000]))
        return Event(
            event_type="acquisition",
            date=date,
            participants={"acquirer": acquirer, "target": target,
                          "price": f"${price} million"},
            triples=[
                (acquirer, "acquired", target),
                (target, "subsidiaryOf", acquirer),
            ],
        )

    def _event_launch(self, date: SimpleDate) -> Event:
        products = self.kb.entities_of_type("Product")
        companies_with_products = [
            (c, p)
            for p in sorted(products)
            for c in [t.object for t in self.kb.store.match(subject=p, predicate="productOf")]
        ]
        company, product = companies_with_products[
            int(self.rng.integers(len(companies_with_products)))
        ]
        return Event(
            event_type="launch",
            date=date,
            participants={"company": company, "product": product},
            triples=[
                (company, "launched", product),
                (product, "productOf", company),
            ],
        )

    def _event_deployment(self, date: SimpleDate) -> Event:
        org = self._pick_company()
        technologies = sorted(self.kb.entities_of_type("Technology"))
        technology = technologies[int(self.rng.integers(len(technologies)))]
        return Event(
            event_type="deployment",
            date=date,
            participants={"org": org, "technology": technology},
            triples=[(org, "usesTechnology", technology)],
        )

    def _event_partnership(self, date: SimpleDate) -> Event:
        a = self._pick_company()
        b = self._pick_company(exclude=(a,))
        return Event(
            event_type="partnership",
            date=date,
            participants={"a": a, "b": b},
            triples=[(a, "partnerOf", b), (b, "partnerOf", a)],
        )

    def _event_regulation(self, date: SimpleDate) -> Event:
        agencies = sorted(self.kb.entities_of_type("Agency")) or ["FAA"]
        agency = agencies[int(self.rng.integers(len(agencies)))]
        return Event(
            event_type="regulation",
            date=date,
            participants={"agency": agency, "industry": "Drone_Industry"},
            triples=[(agency, "regulates", "Drone_Industry")],
        )

    def _event_incident(self, date: SimpleDate) -> Event:
        products = sorted(self.kb.entities_of_type("Product"))
        product = products[int(self.rng.integers(len(products)))]
        cities = sorted(self.kb.entities_of_type("City"))
        city = cities[int(self.rng.integers(len(cities)))]
        return Event(
            event_type="incident",
            date=date,
            participants={"product": product, "location": city},
            triples=[(product, "bannedIn", city)],
        )

    def _event_expansion(self, date: SimpleDate) -> Event:
        company = self._pick_company()
        industries = sorted(self.kb.entities_of_type("Industry"))
        industry = industries[int(self.rng.integers(len(industries)))]
        return Event(
            event_type="expansion",
            date=date,
            participants={"company": company, "industry": industry},
            triples=[(company, "operatesIn", industry)],
        )
