"""Render world events into WSJ-style article text.

Each article carries its gold triples so extraction quality is
measurable.  Template variety exercises different extractor paths
(active/passive voice, appositives, pronoun follow-ups); "web crawl"
rendering adds the noise the paper attributes to lower-trust sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.world import Event
from repro.kb.knowledge_base import KnowledgeBase
from repro.nlp.dates import SimpleDate


@dataclass
class Article:
    """A generated document.

    Attributes:
        doc_id: Stable document id.
        date: Publication date (== event date).
        source: Source name ("wsj" or a crawl site).
        title: Headline.
        text: Body text.
        gold_triples: Canonical ``(s, p, o)`` facts expressed in the text.
        event_type: The generating event's type.
    """

    doc_id: str
    date: SimpleDate
    source: str
    title: str
    text: str
    gold_triples: List[Tuple[str, str, str]] = field(default_factory=list)
    event_type: str = ""


def _display(kb: KnowledgeBase, entity: str) -> str:
    """Human-readable surface form for an entity id."""
    del kb
    return entity.replace("_", " ")


def _month_name(date: SimpleDate) -> str:
    names = ["January", "February", "March", "April", "May", "June", "July",
             "August", "September", "October", "November", "December"]
    return names[(date.month or 1) - 1]


def _date_phrase(date: SimpleDate) -> str:
    if date.day is not None and date.month is not None:
        return f"{_month_name(date)} {date.day}, {date.year}"
    if date.month is not None:
        return f"{_month_name(date)} {date.year}"
    return str(date.year)


class ArticleRenderer:
    """Turn :class:`Event` objects into :class:`Article` text.

    Args:
        kb: KB used for display names and context sentences.
        seed: RNG seed for template choice.
        crawl_noise: Probability (for crawl sources) of injecting filler
            and clause-heavy phrasing that depresses extraction quality.
    """

    CRAWL_SITES = ["dronewire.example", "uavdaily.example", "techbuzz.example"]

    def __init__(self, kb: KnowledgeBase, seed: int = 11, crawl_noise: float = 0.5) -> None:
        self.kb = kb
        self.rng = np.random.default_rng(seed)
        self.crawl_noise = crawl_noise
        self._counter = 0

    # ------------------------------------------------------------------
    def render(self, event: Event, source: str = "wsj") -> Article:
        """Render one event as an article from the given source."""
        self._counter += 1
        lead, title = self._lead_sentence(event)
        sentences = [lead]
        sentences.extend(self._context_sentences(event))
        if source != "wsj" and self.rng.random() < self.crawl_noise:
            sentences.insert(0, self._filler_sentence())
            sentences.append(self._filler_sentence())
        text = " ".join(sentences)
        return Article(
            doc_id=f"{source}-{self._counter:06d}",
            date=event.date,
            source=source,
            title=title,
            text=text,
            gold_triples=list(event.triples),
            event_type=event.event_type,
        )

    # ------------------------------------------------------------------
    def _pick(self, options: List[str]) -> str:
        return options[int(self.rng.integers(len(options)))]

    def _lead_sentence(self, event: Event) -> Tuple[str, str]:
        maker = getattr(self, f"_lead_{event.event_type}")
        return maker(event)

    def _lead_funding(self, event: Event) -> Tuple[str, str]:
        company = _display(self.kb, event.participants["company"])
        investor = _display(self.kb, event.participants["investor"])
        amount = event.participants["amount"]
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"{company} raised {amount} from {investor} in {when}.",
            f"{company} secured {amount} in funding from {investor} in {when}.",
            f"In {when}, {company} raised {amount} from {investor}.",
        ])
        return sentence, f"{company} raises {amount}"

    def _lead_acquisition(self, event: Event) -> Tuple[str, str]:
        acquirer = _display(self.kb, event.participants["acquirer"])
        target = _display(self.kb, event.participants["target"])
        price = event.participants["price"]
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"{acquirer} acquired {target} for {price} in {when}.",
            f"{acquirer} bought {target} for {price} in {when}.",
            f"In {when}, {acquirer} acquired {target} in a deal valued at {price}.",
        ])
        return sentence, f"{acquirer} acquires {target}"

    def _lead_launch(self, event: Event) -> Tuple[str, str]:
        company = _display(self.kb, event.participants["company"])
        product = _display(self.kb, event.participants["product"])
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"{company} launched the {product} in {when}.",
            f"{company} unveiled the {product} in {when}.",
            f"{company} released the {product} in {when}.",
        ])
        return sentence, f"{company} launches {product}"

    def _lead_deployment(self, event: Event) -> Tuple[str, str]:
        org = _display(self.kb, event.participants["org"])
        technology = _display(self.kb, event.participants["technology"]).lower()
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"{org} uses {technology} in its operations.",
            f"{org} deployed {technology} across its operations in {when}.",
            f"{org} employs {technology} to support its business.",
        ])
        return sentence, f"{org} adopts {technology}"

    def _lead_partnership(self, event: Event) -> Tuple[str, str]:
        a = _display(self.kb, event.participants["a"])
        b = _display(self.kb, event.participants["b"])
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"{a} partnered with {b} in {when}.",
            f"{a} signed an agreement with {b} in {when}.",
        ])
        return sentence, f"{a} partners with {b}"

    def _lead_regulation(self, event: Event) -> Tuple[str, str]:
        agency = _display(self.kb, event.participants["agency"])
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"The {agency} approved new rules for commercial drones in {when}.",
            f"The {agency} proposed new safety regulations for drones in {when}.",
        ])
        return sentence, f"{agency} updates drone rules"

    def _lead_incident(self, event: Event) -> Tuple[str, str]:
        product = _display(self.kb, event.participants["product"])
        location = _display(self.kb, event.participants["location"])
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"A {product} crashed near {location} in {when}.",
            f"Officials banned the {product} in {location} after an incident in {when}.",
        ])
        return sentence, f"{product} incident in {location}"

    def _lead_expansion(self, event: Event) -> Tuple[str, str]:
        company = _display(self.kb, event.participants["company"])
        industry = _display(self.kb, event.participants["industry"]).lower()
        when = _date_phrase(event.date)
        sentence = self._pick([
            f"{company} expanded into {industry} in {when}.",
            f"{company} entered the {industry} market in {when}.",
        ])
        return sentence, f"{company} expands"

    # ------------------------------------------------------------------
    def _context_sentences(self, event: Event) -> List[str]:
        """1-2 true background sentences about a participant from the KB."""
        sentences: List[str] = []
        participants = [
            v for v in event.participants.values() if self.kb.has_entity(v)
        ]
        if not participants:
            return sentences
        entity = participants[0]
        name = _display(self.kb, entity)
        facts = self.kb.store.match(subject=entity)
        renderers: Dict[str, str] = {
            "headquarteredIn": "{s} is headquartered in {o}.",
            "foundedBy": "{s} was founded by {o}.",
            "manufactures": "{s} manufactures the {o}.",
            "operatesIn": "{s} operates in the {o}.",
            "regulates": "The {s} regulates the {o}.",
        }
        candidates = [t for t in facts if t.predicate in renderers and t.curated]
        if candidates:
            fact = candidates[int(self.rng.integers(len(candidates)))]
            sentences.append(
                renderers[fact.predicate].format(
                    s=name, o=_display(self.kb, fact.object).lower()
                    if fact.predicate == "operatesIn"
                    else _display(self.kb, fact.object),
                )
            )
        return sentences

    def _filler_sentence(self) -> str:
        return self._pick([
            "Click here to subscribe to our newsletter for weekly drone news.",
            "Many readers asked us about this story on social media.",
            "This is the kind of story that everyone seems to be talking about.",
            "Experts however remained divided about what it might eventually mean.",
        ])
