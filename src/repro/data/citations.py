"""Citation-analytics domain (paper §3.1, data source 3).

NOUS's algorithms "are being used for developing custom knowledge graphs
for diverse domains", the third being "citation analytics from
bibliography databases".  Bibliography data is *structured* — it enters
the dynamic KG directly as dated triples without the NLP stage.  This
module generates a synthetic bibliography world: authors with topical
communities, venues, papers over a timeline, and citations with
preferential attachment plus a topical "hot topic" burst late in the
timeline, so trending queries have a real signal to find.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.ontology import Ontology
from repro.nlp.dates import SimpleDate

CITATION_TYPES = [
    ("Agent", Ontology.ROOT),
    ("Person", "Agent"),
    ("Author", "Person"),
    ("Publication", Ontology.ROOT),
    ("Venue", Ontology.ROOT),
    ("ResearchTopic", Ontology.ROOT),
    ("Institution", Ontology.ROOT),
]

CITATION_PREDICATES = [
    ("authoredBy", "Publication", "Author"),
    ("publishedIn", "Publication", "Venue"),
    ("cites", "Publication", "Publication"),
    ("hasTopic", "Publication", "ResearchTopic"),
    ("affiliatedWith", "Author", "Institution"),
    ("worksOn", "Author", "ResearchTopic"),
]

TOPICS = ["graph_mining", "stream_processing", "knowledge_graphs",
          "entity_linking", "query_languages"]
VENUES = ["ICDE", "VLDB", "SIGMOD", "KDD", "WWW"]
INSTITUTIONS = ["PNNL", "Purdue", "ETH", "MPI", "Tsinghua"]


def build_citation_ontology() -> Ontology:
    """Ontology for the bibliography domain."""
    ontology = Ontology()
    ontology.bulk_add_types(CITATION_TYPES)
    for name, domain, range_ in CITATION_PREDICATES:
        ontology.add_predicate(name, domain=domain, range_=range_)
    return ontology


@dataclass
class FactBatch:
    """One dated batch of structured facts (a bibliography update)."""

    date: SimpleDate
    facts: List[Tuple[str, str, str]] = field(default_factory=list)
    source: str = "dblp-like"


class CitationWorld:
    """Synthetic bibliography generator.

    Args:
        n_authors / n_papers: World size.
        seed: RNG seed; generation is deterministic given it.
        start_year / end_year: Publication timeline.
        hot_topic: Topic whose citation rate bursts in the last third of
            the timeline (the trend for the miner to discover).
    """

    def __init__(
        self,
        n_authors: int = 40,
        n_papers: int = 120,
        seed: int = 37,
        start_year: int = 2008,
        end_year: int = 2016,
        hot_topic: str = "knowledge_graphs",
    ) -> None:
        if n_authors < 2 or n_papers < 2:
            raise ConfigError("need at least 2 authors and 2 papers")
        if hot_topic not in TOPICS:
            raise ConfigError(f"hot_topic must be one of {TOPICS}")
        self.rng = np.random.default_rng(seed)
        self.n_authors = n_authors
        self.n_papers = n_papers
        self.start_year = start_year
        self.end_year = end_year
        self.hot_topic = hot_topic
        self.authors: List[str] = []
        self.papers: List[str] = []
        self._paper_topic: Dict[str, str] = {}
        self._paper_year: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def populate_kb(self, kb: KnowledgeBase) -> None:
        """Register authors, venues, topics and institutions in the KB."""
        for topic in TOPICS:
            kb.add_entity(
                f"topic_{topic}", "ResearchTopic", aliases=[topic.replace("_", " ")],
                description=f"Research on {topic.replace('_', ' ')}.",
            )
        for venue in VENUES:
            kb.add_entity(f"venue_{venue}", "Venue", aliases=[venue],
                          description=f"The {venue} conference.")
        for institution in INSTITUTIONS:
            kb.add_entity(f"inst_{institution}", "Institution",
                          aliases=[institution])
        for i in range(self.n_authors):
            author = f"author_{i:03d}"
            topic = TOPICS[int(self.rng.integers(len(TOPICS)))]
            institution = INSTITUTIONS[int(self.rng.integers(len(INSTITUTIONS)))]
            kb.add_entity(author, "Author", aliases=[f"Author {i}"],
                          description=f"Researcher working on {topic}.")
            kb.add_fact(author, "worksOn", f"topic_{topic}")
            kb.add_fact(author, "affiliatedWith", f"inst_{institution}")
            self.authors.append(author)

    def generate_batches(self, kb: KnowledgeBase) -> List[FactBatch]:
        """Generate dated publication/citation fact batches in order."""
        if not self.authors:
            self.populate_kb(kb)
        batches: List[FactBatch] = []
        total_months = (self.end_year - self.start_year + 1) * 12
        for index in range(self.n_papers):
            progress = index / self.n_papers
            month_index = int(progress * total_months)
            year = self.start_year + month_index // 12
            month = month_index % 12 + 1
            date = SimpleDate(year=year, month=month)
            paper = f"paper_{index:04d}"
            topic = self._choose_topic(progress)
            venue = VENUES[int(self.rng.integers(len(VENUES)))]
            kb.add_entity(paper, "Publication", aliases=[f"Paper {index}"],
                          description=f"A paper about {topic.replace('_', ' ')}.")
            facts: List[Tuple[str, str, str]] = [
                (paper, "hasTopic", f"topic_{topic}"),
                (paper, "publishedIn", f"venue_{venue}"),
            ]
            for author in self._pick_authors():
                facts.append((paper, "authoredBy", author))
            facts.extend(
                (paper, "cites", cited) for cited in self._pick_citations(topic, progress)
            )
            self.papers.append(paper)
            self._paper_topic[paper] = topic
            self._paper_year[paper] = year
            batches.append(FactBatch(date=date, facts=facts))
        return batches

    # ------------------------------------------------------------------
    def _choose_topic(self, progress: float) -> str:
        if progress > 0.66 and self.rng.random() < 0.6:
            return self.hot_topic  # the late burst
        return TOPICS[int(self.rng.integers(len(TOPICS)))]

    def _pick_authors(self) -> List[str]:
        count = 1 + int(self.rng.integers(3))
        picks = self.rng.choice(len(self.authors), size=min(count, len(self.authors)),
                                replace=False)
        return [self.authors[int(i)] for i in picks]

    def _pick_citations(self, topic: str, progress: float) -> List[str]:
        if not self.papers:
            return []
        count = min(len(self.papers), 1 + int(self.rng.integers(4)))
        # Preferential attachment by recency + topical affinity; the hot
        # topic attracts extra citations late in the timeline.
        weights = []
        for paper in self.papers:
            weight = 1.0
            if self._paper_topic[paper] == topic:
                weight += 2.0
            if (
                progress > 0.66
                and self._paper_topic[paper] == self.hot_topic
            ):
                weight += 3.0
            weights.append(weight)
        probabilities = np.asarray(weights) / sum(weights)
        picks = self.rng.choice(
            len(self.papers), size=count, replace=False, p=probabilities
        )
        return [self.papers[int(i)] for i in picks]
