"""Multi-tenant namespaces: one gateway, many isolated KGs.

The ROADMAP's "heavy traffic from millions of users" shape is not one
big graph — it is many *isolated* graphs behind one shared serving
fleet.  This module supplies the registry half of that shape:

- :class:`TenantSpec` — a declarative, JSON-round-trippable description
  of one tenant's service (curated-base spec, shard count/mode, config
  knobs, fairness quotas).
- :class:`TenantRegistry` — tenant id → live
  :class:`~repro.api.base.ServiceLike`, built *lazily* from its spec on
  first use.  Each tenant persists under its own ``data_dir`` subtree
  (``<root>/tenant-<name>``), sharded tenants borrow one shared scatter
  pool (a process-wide thread budget instead of ``num_shards`` threads
  per tenant), and per-tenant standing-query quotas are enforced here
  so the gateway stays a thin adapter.

The gateway (:class:`~repro.api.http.server.NousGateway`) wraps every
service it is given in a registry and resolves each request's tenant
from the route (``/v1/t/<tenant>/...``), the ``X-Nous-Tenant`` header,
or the ``default`` fallback — so a registry-less deployment behaves
exactly as before (see ``docs/TENANCY.md``).
"""

from __future__ import annotations

import os
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.base import ServiceLike
from repro.api.service import NousService, ServiceConfig
from repro.core.pipeline import NousConfig
from repro.errors import (
    ConfigError,
    TenancyError,
    TenantExistsError,
    TenantQuotaError,
    UnknownTenantError,
)

__all__ = ["DEFAULT_TENANT", "TenantSpec", "TenantRegistry"]

#: The tenant every un-prefixed (legacy) route resolves to.
DEFAULT_TENANT = "default"

#: Tenant ids are path segments and directory names: lowercase
#: alphanumerics plus ``- _ .`` after the first character, 64 max.
_TENANT_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]{0,63}$")

#: Default size of the scatter-pool budget every sharded tenant shares.
DEFAULT_SCATTER_BUDGET = 8


def validate_tenant_name(name: str) -> str:
    """The name, when it is a legal tenant id.

    Raises:
        TenancyError: Malformed id (tenant ids travel in URL paths and
            on-disk directory names, so the alphabet is strict).
    """
    if not _TENANT_NAME_RE.match(name):
        raise TenancyError(
            f"invalid tenant name {name!r}: must match "
            "[a-z0-9][a-z0-9._-]{0,63}"
        )
    return name


@dataclass(frozen=True)
class TenantSpec:
    """Declarative description of one tenant's service.

    Attributes:
        name: Tenant id (validated; see :func:`validate_tenant_name`).
        kb: Curated-base spec, resolved by
            :func:`repro.api.cluster.process.resolve_kb_spec` —
            ``"drone"``, ``"empty"`` or ``"world:<articles>:<seed>"``.
        shards: Shard count; 1 serves a monolithic
            :class:`~repro.api.service.NousService`, more a
            :class:`~repro.api.cluster.ShardedNousService`.
        shard_mode: ``"local"`` or ``"process"`` (see docs/SHARDING.md).
        max_subscriptions: Standing-query quota; a subscribe past it
            answers the structured ``tenancy.quota`` error (HTTP 429).
            0 means unlimited.
        window_size: Miner window for the tenant's
            :class:`~repro.core.pipeline.NousConfig`.
        seed: Pipeline seed (determinism per tenant).
        extract_workers: NLP extraction pool size per service.
        max_batch: Micro-batch size for the ingestion queue.
    """

    name: str
    kb: str = "drone"
    shards: int = 1
    shard_mode: str = "local"
    max_subscriptions: int = 0
    window_size: int = 400
    seed: int = 7
    extract_workers: int = 1
    max_batch: int = 32

    def validate(self) -> "TenantSpec":
        validate_tenant_name(self.name)
        if self.shards < 1:
            raise TenancyError(
                f"tenant {self.name!r}: shards must be >= 1, got {self.shards}"
            )
        if self.shard_mode not in ("local", "process"):
            raise TenancyError(
                f"tenant {self.name!r}: shard_mode must be 'local' or "
                f"'process', got {self.shard_mode!r}"
            )
        if self.max_subscriptions < 0:
            raise TenancyError(
                f"tenant {self.name!r}: max_subscriptions must be >= 0, "
                f"got {self.max_subscriptions}"
            )
        return self

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantSpec":
        """Build and validate a spec from a wire dict (unknown keys are
        rejected so a typo'd quota can never silently mean *unlimited*)."""
        if "name" not in data:
            raise TenancyError("tenant spec requires a 'name'")
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise TenancyError(
                f"unknown tenant spec fields: {sorted(unknown)} "
                f"(known: {sorted(known)})"
            )
        try:
            spec = cls(
                name=str(data["name"]),
                kb=str(data.get("kb", "drone")),
                shards=int(data.get("shards", 1)),
                shard_mode=str(data.get("shard_mode", "local")),
                max_subscriptions=int(data.get("max_subscriptions", 0)),
                window_size=int(data.get("window_size", 400)),
                seed=int(data.get("seed", 7)),
                extract_workers=int(data.get("extract_workers", 1)),
                max_batch=int(data.get("max_batch", 32)),
            )
        except (TypeError, ValueError) as exc:
            raise TenancyError(f"malformed tenant spec: {exc}") from exc
        return spec.validate()


class TenantRegistry:
    """Tenant id → live service, built lazily from per-tenant specs.

    The registry owns every service it builds (closed by
    :meth:`close`); a ``default_service`` handed in by the caller is
    *borrowed* — exactly the gateway's existing ownership contract (the
    caller keeps the service it passed to ``NousGateway``).

    Args:
        default_service: The service legacy un-prefixed routes resolve
            to, registered under :data:`DEFAULT_TENANT`.  Optional when
            ``specs`` carries a ``default`` entry instead.
        specs: Tenant specs to register (services are not built until
            first use).
        data_dir: Durability root; tenant *t* persists under
            ``<data_dir>/tenant-<t>`` (sharded tenants add their
            ``shard-<i>`` subtrees below that).
        scatter_budget: Thread budget of the single scatter pool every
            sharded tenant borrows (the "shared process pool" of
            docs/TENANCY.md).
    """

    def __init__(
        self,
        default_service: Optional[ServiceLike] = None,
        specs: Tuple[TenantSpec, ...] = (),
        data_dir: Optional[str] = None,
        scatter_budget: int = DEFAULT_SCATTER_BUDGET,
    ) -> None:
        if scatter_budget < 1:
            raise ConfigError(
                f"scatter_budget must be >= 1, got {scatter_budget}"
            )
        self._lock = threading.RLock()
        self._data_dir = data_dir
        self._scatter_budget = scatter_budget
        self._specs: Dict[str, TenantSpec] = {}
        self._services: Dict[str, ServiceLike] = {}
        # Names of tenants whose service this registry built (and must
        # therefore close); the injected default is the caller's.
        self._owned: set[str] = set()
        self._scatter_pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        for spec in specs:
            self._specs[spec.validate().name] = spec
        if default_service is not None:
            self._services[DEFAULT_TENANT] = default_service
            self._specs.setdefault(
                DEFAULT_TENANT, TenantSpec(name=DEFAULT_TENANT)
            )
        elif DEFAULT_TENANT not in self._specs:
            raise ConfigError(
                "a registry needs a default tenant: pass default_service "
                "or include a spec named 'default'"
            )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def tenant_names(self) -> List[str]:
        with self._lock:
            return sorted(self._specs)

    def spec(self, name: str) -> TenantSpec:
        with self._lock:
            spec = self._specs.get(name)
        if spec is None:
            raise UnknownTenantError(name)
        return spec

    def get(self, name: str) -> ServiceLike:
        """The live service for ``name``, building it on first use.

        Raises:
            UnknownTenantError: No such tenant is registered.
            TenancyError: The registry is closed.
        """
        with self._lock:
            if self._closed:
                raise TenancyError("tenant registry is closed")
            service = self._services.get(name)
            if service is not None:
                return service
            spec = self._specs.get(name)
            if spec is None:
                raise UnknownTenantError(name)
            # Build under the lock: construction must be once-only, and
            # a KB build is a one-time cost the first request amortises.
            service = self._build(spec)
            self._services[name] = service
            self._owned.add(name)
            return service

    @property
    def default(self) -> ServiceLike:
        return self.get(DEFAULT_TENANT)

    def ensure_subscription_capacity(self, name: str) -> None:
        """Enforce the tenant's standing-query quota *before* a
        subscribe registers.

        Raises:
            TenantQuotaError: The tenant is at ``max_subscriptions``.
        """
        spec = self.spec(name)
        if spec.max_subscriptions <= 0:
            return
        in_use = self.get(name).subscription_count
        if in_use >= spec.max_subscriptions:
            raise TenantQuotaError(name, spec.max_subscriptions, in_use)

    # ------------------------------------------------------------------
    # administration
    # ------------------------------------------------------------------
    def describe(self) -> List[Dict[str, Any]]:
        """One info dict per tenant (``GET /v1/tenants``): the spec plus
        live state for tenants whose service has been built."""
        with self._lock:
            names = sorted(self._specs)
            infos = []
            for name in names:
                info: Dict[str, Any] = {"spec": self._specs[name].to_dict()}
                info["name"] = name
                service = self._services.get(name)
                info["live"] = service is not None
                if service is not None:
                    info["kg_version"] = service.kg_version
                    info["documents_ingested"] = service.documents_ingested
                    info["subscriptions"] = service.subscription_count
                infos.append(info)
            return infos

    def create(self, spec: TenantSpec) -> Dict[str, Any]:
        """Register a new tenant (service built lazily on first use).

        Raises:
            TenantExistsError: The name is taken.
        """
        spec.validate()
        with self._lock:
            if self._closed:
                raise TenancyError("tenant registry is closed")
            if spec.name in self._specs:
                raise TenantExistsError(spec.name)
            self._specs[spec.name] = spec
        return {"name": spec.name, "live": False, "spec": spec.to_dict()}

    def delete(self, name: str, drain: bool = True) -> Dict[str, Any]:
        """Unregister a tenant, draining and closing its service.

        The ``default`` tenant is not deletable — every legacy
        un-prefixed route resolves to it.

        Raises:
            UnknownTenantError: No such tenant.
            TenancyError: Attempt to delete ``default``.
        """
        if name == DEFAULT_TENANT:
            raise TenancyError(
                "the 'default' tenant cannot be deleted (legacy routes "
                "resolve to it)"
            )
        with self._lock:
            if name not in self._specs:
                raise UnknownTenantError(name)
            del self._specs[name]
            service = self._services.pop(name, None)
            owned = name in self._owned
            self._owned.discard(name)
        drained = False
        if service is not None and owned:
            if drain:
                try:
                    service.flush()
                    drained = True
                except Exception:  # noqa: BLE001 - best-effort drain
                    pass
            service.close()
        return {"name": name, "deleted": True, "drained": drained}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every registry-built service (idempotent).  Borrowed
        services — the injected default — stay running."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            owned = [
                self._services[name]
                for name in self._owned
                if name in self._services
            ]
            self._services.clear()
            self._owned.clear()
            pool, self._scatter_pool = self._scatter_pool, None
        for service in owned:
            try:
                service.close()
            except Exception:  # noqa: BLE001 - teardown must finish
                pass
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _tenant_data_dir(self, name: str) -> Optional[str]:
        if self._data_dir is None:
            return None
        return os.path.join(self._data_dir, f"tenant-{name}")

    def _shared_scatter_pool(self) -> ThreadPoolExecutor:
        # Lazily built: a registry of pure monoliths never pays for it.
        if self._scatter_pool is None:
            self._scatter_pool = ThreadPoolExecutor(
                max_workers=self._scatter_budget,
                thread_name_prefix="nous-tenant-scatter",
            )
        return self._scatter_pool

    def _build(self, spec: TenantSpec) -> ServiceLike:
        from repro.api.cluster.process import resolve_kb_spec

        config = NousConfig(
            window_size=spec.window_size,
            seed=spec.seed,
            extract_workers=spec.extract_workers,
        )
        service_config = ServiceConfig(
            auto_start=True, max_batch=spec.max_batch
        )
        if spec.shards > 1:
            from repro.api.cluster import ShardedNousService

            return ShardedNousService(
                num_shards=spec.shards,
                config=config,
                service_config=service_config,
                shard_mode=spec.shard_mode,
                kb_spec=spec.kb,
                data_dir=self._tenant_data_dir(spec.name),
                executor=self._shared_scatter_pool(),
            )
        return NousService(
            kb=resolve_kb_spec(spec.kb),
            config=config,
            service_config=service_config,
            data_dir=self._tenant_data_dir(spec.name),
        )
