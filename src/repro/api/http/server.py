"""``NousGateway``: a threaded, stdlib-only HTTP server over the wire
envelopes (documented endpoint-by-endpoint in ``docs/API.md``).

Routes are declared in a **route table** (method, pattern, handler) and
matched with path captures — see :data:`_ROUTES`.  Every serving route
is registered twice: un-prefixed (``/v1/...``, resolving to the
``default`` tenant, or the ``X-Nous-Tenant`` header when present) and
tenant-scoped (``/v1/t/<tenant>/...``); the path segment wins over the
header (precedence documented in ``docs/TENANCY.md``).

- ``POST /v1/ingest`` — body is an
  :class:`~repro.api.envelopes.IngestRequest` wire dict.  Returns 202
  with a ``ticket`` envelope (the document is queued); ``?wait=1``
  blocks until the micro-batch drains and returns the ``ingest``
  envelope instead.
- ``GET /v1/ingest/<ticket_id>`` — poll a ticket: 202 while pending,
  the fulfilled ``ingest`` envelope once drained.  Tickets are
  tenant-scoped: tenant *a* cannot poll tenant *b*'s ticket.
- ``POST /v1/query`` — body is a ``QueryRequest`` wire dict; returns
  the ``ApiResponse`` wire dict with the error taxonomy mapped to HTTP
  statuses via :func:`~repro.api.http.protocol.status_for_error`.
- ``GET /v1/stats`` — the ``statistics`` envelope (graph state); the
  ``ETag`` validator is tenant-distinct (``"kg-<tenant>-<version>"``).
- ``GET /v1/healthz`` — liveness plus queue state (pending documents,
  drains, subscriptions), a plain dict rather than an envelope.
- ``GET /v1/subscribe?q=...`` — NDJSON stream of standing-query
  added/removed deltas (chunked transfer, heartbeat keepalives; see
  :mod:`repro.api.http.protocol` for the framing).  ``min_interval`` /
  ``max_rate`` throttle the stream: intermediate deltas are coalesced
  into one *net* added/removed diff per interval.
- ``GET/POST/DELETE /v1/tenants[/<name>]`` — the tenant admin surface
  (list / create / delete-with-drain); see ``docs/TENANCY.md``.

A request to a known path with the wrong verb answers **405** with an
``Allow`` header naming the verbs the path serves; unknown paths answer
404.

Concurrency: requests are served by one thread per connection
(:class:`http.server.ThreadingHTTPServer`); every KG-touching call
funnels through ``NousService``'s engine lock, so N concurrent clients
serialise without deadlocking the micro-batch drainer.  Subscribe
streams never run on the drainer thread — the per-connection handler
polls its subscription's delta queue (woken promptly by a callback), so
a slow or dead client can never stall ingestion; a dead client is
detached at its next frame or heartbeat write.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple, Union, cast
from urllib.parse import parse_qs, urlsplit

from repro.api.base import ServiceLike, SubscriptionLike, TenantRegistryLike
from repro.api.envelopes import ApiResponse, IngestRequest, QueryRequest
from repro.api.http.protocol import (
    GZIP_MIN_BYTES,
    NDJSON_CONTENT_TYPE,
    accepts_gzip,
    bye_frame,
    encode_frame,
    gateway_error,
    gunzip_bytes,
    gzip_bytes,
    heartbeat_frame,
    hello_frame,
    status_for_error,
    update_frame,
)
from repro.api.http.qcache import SharedQueryCache
from repro.api.service import IngestTicket, StandingQueryUpdate
from repro.api.tenancy import DEFAULT_TENANT, TenantRegistry, TenantSpec
from repro.api.wire import key_of_row, kind_of_query, pattern_to_wire
from repro.errors import ConfigError, ReproError
from repro.query.model import TrendingQuery
from repro.query.parser import parse_query

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Header alias for the tenant on un-prefixed routes; the
#: ``/v1/t/<tenant>/...`` path segment takes precedence over it.
TENANT_HEADER = "X-Nous-Tenant"


@dataclass(frozen=True)
class GatewayConfig:
    """Network and streaming policy for :class:`NousGateway`.

    Attributes:
        host: Interface to bind.
        port: TCP port; 0 picks an ephemeral port (see
            :attr:`NousGateway.port` for the bound value).
        max_body_bytes: Hard cap on request bodies; larger requests are
            rejected with 413 before the body is read.
        heartbeat_interval: Seconds between keepalive frames on an idle
            subscribe stream (also how quickly a dead subscriber is
            detached when no deltas flow).
        poll_interval: Upper bound on delta-delivery latency for
            subscribe streams (the wake callback usually beats it).
        wait_timeout: Deadline for ``?wait=1`` ingests; exceeded waits
            return 504 (the document stays queued).
        max_tickets: Tickets kept for ``GET /v1/ingest/<id>`` polling;
            oldest are dropped beyond this.
        idle_timeout: Socket timeout on keep-alive connections — a
            client that vanishes without FIN/RST releases its handler
            thread after this long instead of pinning it forever.  Must
            exceed ``heartbeat_interval``: long-lived shard connections
            (the cluster's remote-shard streams) rely on each heartbeat
            write landing before the idle deadline ever fires.
        log_requests: Emit one stderr line per request (the default is
            silent, which test suites appreciate).
        gzip_min_bytes: Response bodies at least this large are gzipped
            when the request's ``Accept-Encoding`` admits it (subscribe
            streams compress per-frame regardless of size once the
            client advertises gzip).  Small bodies always go identity —
            the gzip framing would outweigh the saving.
        shared_cache_dir: When set, cache query results in this
            directory keyed on (tenant, query text, composite KG
            stamp), so gateway replicas pointed at the same directory
            share hits (see ``docs/PERFORMANCE.md``).  ``None``
            (default) disables the shared cache; the engine's
            in-process cache still runs.
        shared_cache_entries: Entry cap for the shared cache directory
            (oldest-first eviction).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_body_bytes: int = 1 << 20
    heartbeat_interval: float = 10.0
    poll_interval: float = 0.05
    wait_timeout: float = 60.0
    max_tickets: int = 1024
    idle_timeout: float = 120.0
    log_requests: bool = False
    gzip_min_bytes: int = GZIP_MIN_BYTES
    shared_cache_dir: Optional[str] = None
    shared_cache_entries: int = 256

    def validate(self) -> None:
        if self.max_body_bytes < 1:
            raise ConfigError("max_body_bytes must be >= 1")
        if self.gzip_min_bytes < 1:
            raise ConfigError("gzip_min_bytes must be >= 1")
        if self.shared_cache_entries < 1:
            raise ConfigError("shared_cache_entries must be >= 1")
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be > 0")
        if self.poll_interval <= 0:
            raise ConfigError("poll_interval must be > 0")
        if self.max_tickets < 1:
            raise ConfigError("max_tickets must be >= 1")
        if self.idle_timeout <= 0:
            raise ConfigError("idle_timeout must be > 0")
        if self.heartbeat_interval >= self.idle_timeout:
            # A stream that only heartbeats every `heartbeat_interval`
            # seconds would trip the socket's idle deadline in between:
            # every quiet long-lived connection (remote shards, slow
            # subscribers) would be torn down by its own keepalive
            # schedule.
            raise ConfigError(
                f"heartbeat_interval ({self.heartbeat_interval}) must beat "
                f"idle_timeout ({self.idle_timeout})"
            )


# ---------------------------------------------------------------------------
# the route table
# ---------------------------------------------------------------------------


def _compile_pattern(pattern: str) -> "re.Pattern[str]":
    """``/v1/t/<tenant>/ingest/<ticket_id>`` → anchored regex with one
    named group per ``<capture>`` (captures never span ``/``)."""
    parts: List[str] = []
    for segment in pattern.split("/"):
        if segment.startswith("<") and segment.endswith(">"):
            parts.append(f"(?P<{segment[1:-1]}>[^/]+)")
        else:
            parts.append(re.escape(segment))
    return re.compile("^" + "/".join(parts) + "$")


@dataclass(frozen=True)
class Route:
    """One row of the gateway's route table.

    Attributes:
        method: HTTP verb this row serves.
        pattern: Path pattern; ``<name>`` segments capture.
        handler: ``_GatewayHandler`` method name, called as
            ``handler(captures, params)``.
        needs_service: Resolve the request's tenant to a live service
            before dispatch (admin routes operate on the registry
            itself and skip it).
        defaults: Static captures merged under the matched ones (how
            the literal ``/v1/shard/flush`` row tells the shared shard
            handler which hook it is).
    """

    method: str
    pattern: str
    handler: str
    needs_service: bool = True
    defaults: Mapping[str, str] = field(default_factory=dict)

    @property
    def regex(self) -> "re.Pattern[str]":
        return _compile_pattern(self.pattern)


#: ``/v1/shard/<name>`` hooks and their verbs (consumed by
#: :class:`~repro.api.cluster.RemoteShardClient`).
_SHARD_ROUTES = {
    "stream_view": "GET",
    "extracted_facts": "GET",
    "submit": "POST",
    "flush": "POST",
    "ingest_facts": "POST",
    "refresh": "POST",
    "snapshot": "POST",
    "compute": "POST",
}


def _build_routes() -> Tuple[Route, ...]:
    routes: List[Route] = []

    def serve(method: str, suffix: str, handler: str) -> None:
        # Twice per route: legacy (header/default tenant) and
        # tenant-scoped path tree.
        routes.append(Route(method, f"/v1{suffix}", handler))
        routes.append(Route(method, f"/v1/t/<tenant>{suffix}", handler))

    serve("GET", "/healthz", "_route_healthz")
    serve("GET", "/stats", "_route_stats")
    serve("GET", "/subscribe", "_route_subscribe")
    serve("POST", "/ingest", "_route_ingest")
    serve("GET", "/ingest/<ticket_id>", "_route_ticket_poll")
    serve("POST", "/query", "_route_query")
    for name, method in _SHARD_ROUTES.items():
        serve(method, f"/shard/{name}", "_route_shard")
        # Rebind the defaults on the two rows just appended.
        for index in (-2, -1):
            routes[index] = Route(
                method,
                routes[index].pattern,
                "_route_shard",
                defaults={"shard_route": name},
            )
    routes.append(
        Route("GET", "/v1/tenants", "_route_tenants_list", needs_service=False)
    )
    routes.append(
        Route(
            "POST", "/v1/tenants", "_route_tenants_create", needs_service=False
        )
    )
    routes.append(
        Route(
            "DELETE",
            "/v1/tenants/<name>",
            "_route_tenants_delete",
            needs_service=False,
        )
    )
    return tuple(routes)


_ROUTES: Tuple[Route, ...] = _build_routes()
# Compiled once; Route.regex recompiles per access, so the dispatcher
# uses this parallel list instead.
_COMPILED_ROUTES: Tuple[Tuple["re.Pattern[str]", Route], ...] = tuple(
    (route.regex, route) for route in _ROUTES
)


def _resolve_route(
    method: str, path: str
) -> Tuple[Optional[Route], Dict[str, str], Set[str]]:
    """``(route, captures, allowed)``: the matching row for this verb,
    or ``(None, {}, verbs-that-would-match)`` — an empty ``allowed`` set
    means the *path* is unknown (404), a non-empty one means the verb is
    wrong (405 with ``Allow``)."""
    allowed: Set[str] = set()
    for regex, route in _COMPILED_ROUTES:
        match = regex.match(path)
        if match is None:
            continue
        if route.method == method:
            captures = dict(route.defaults)
            captures.update(cast(Dict[str, str], match.groupdict()))
            return route, captures, allowed
        allowed.add(route.method)
    return None, {}, allowed


class _GatewayHTTPServer(ThreadingHTTPServer):
    """One daemon thread per connection; never blocks shutdown on
    still-streaming subscribers (they exit via the closing event)."""

    daemon_threads = True
    block_on_close = False
    allow_reuse_address = True
    gateway: "NousGateway"


class NousGateway:
    """Serve one NOUS service — or a whole tenant registry — over HTTP.

    The gateway is an *adapter*: it owns no KG state of its own, only a
    bounded registry of pending ingest tickets.  It is typed against
    :class:`~repro.api.base.ServiceLike` /
    :class:`~repro.api.base.TenantRegistryLike`, so a monolithic
    :class:`~repro.api.service.NousService`, a
    :class:`~repro.api.cluster.ShardedNousService` and a multi-tenant
    :class:`~repro.api.tenancy.TenantRegistry` are interchangeable
    behind it (``nous serve --shards N`` / ``--tenants spec.json``).
    The caller keeps ownership of what it passed in: a bare service is
    never closed by the gateway, and neither is a caller-built registry
    (tenants the gateway's *own* internal registry created through the
    admin surface are closed on :meth:`close`).

    Usage::

        with NousGateway(service, GatewayConfig(port=8420)) as gateway:
            print(gateway.url)   # e.g. http://127.0.0.1:8420
            ...
    """

    def __init__(
        self,
        service: Union[ServiceLike, TenantRegistryLike],
        config: Optional[GatewayConfig] = None,
    ) -> None:
        if isinstance(service, TenantRegistry):
            self.registry: TenantRegistryLike = service
            self._owns_registry = False
        elif hasattr(service, "query"):
            # A bare service: wrap it as the default tenant of an
            # internal registry (the service itself stays caller-owned).
            self.registry = TenantRegistry(
                default_service=cast(ServiceLike, service)
            )
            self._owns_registry = True
        else:
            self.registry = cast(TenantRegistryLike, service)
            self._owns_registry = False
        self.config = config or GatewayConfig()
        self.config.validate()
        self.shared_cache: Optional[SharedQueryCache] = (
            SharedQueryCache(
                self.config.shared_cache_dir,
                max_entries=self.config.shared_cache_entries,
            )
            if self.config.shared_cache_dir
            else None
        )
        self.closing = threading.Event()
        self._ticket_lock = threading.Lock()
        self._tickets: "OrderedDict[int, Tuple[str, IngestTicket]]" = (
            OrderedDict()
        )
        self._next_ticket_id = 1
        self._httpd = _GatewayHTTPServer(
            (self.config.host, self.config.port), _GatewayHandler
        )
        self._httpd.gateway = self
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def service(self) -> ServiceLike:
        """The ``default`` tenant's service (what legacy un-prefixed
        routes serve)."""
        return self.registry.get(DEFAULT_TENANT)

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "NousGateway":
        """Start serving on a background thread; returns ``self``."""
        if self._thread is not None:
            raise ReproError("gateway already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="nous-http-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting requests and end every subscribe stream.

        Idempotent, and safe on a never-started gateway; the wrapped
        service is left running (the caller owns it).  Tenants created
        through the admin surface of a gateway-internal registry *are*
        closed — nothing else references them.
        """
        self.closing.set()
        if self._thread is not None:
            # shutdown() handshakes with serve_forever(); calling it
            # with no serve loop running would block forever.
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._owns_registry:
            # Closes registry-*built* services only; the injected
            # default service is borrowed and stays up.
            self.registry.close()

    def __enter__(self) -> "NousGateway":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # ticket registry
    # ------------------------------------------------------------------
    def _register_ticket(self, ticket: IngestTicket, tenant: str) -> int:
        with self._ticket_lock:
            ticket_id = self._next_ticket_id
            self._next_ticket_id += 1
            self._tickets[ticket_id] = (tenant, ticket)
            # Oldest-first eviction.  Deliberately no done()-preference
            # scan: for a process-shard cluster done() is a blocking
            # HTTP poll (and can raise for a dead worker), which must
            # never run under the registry lock.  A single batch can no
            # longer invalidate itself — /v1/shard/submit refuses
            # batches larger than max_tickets up front.
            while len(self._tickets) > self.config.max_tickets:
                self._tickets.popitem(last=False)
            return ticket_id

    def _lookup_ticket(
        self, ticket_id: int, tenant: str
    ) -> Optional[IngestTicket]:
        """The ticket, when it exists *and* belongs to this tenant —
        a foreign tenant's ticket id answers like an unknown one, so
        ids never leak ingest state across namespaces."""
        with self._ticket_lock:
            entry = self._tickets.get(ticket_id)
        if entry is None or entry[0] != tenant:
            return None
        return entry[1]

    def _ticket_envelope(
        self, ticket_id: int, ticket: IngestTicket, tenant: str
    ) -> ApiResponse:
        prefix = "" if tenant == DEFAULT_TENANT else f"/t/{tenant}"
        return ApiResponse(
            ok=True,
            kind="ticket",
            payload={
                "ticket_id": ticket_id,
                "doc_id": ticket.doc_id,
                "done": ticket.done(),
                "href": f"/v1{prefix}/ingest/{ticket_id}",
            },
            rendered=f"queued {ticket.doc_id or '(no id)'} as ticket {ticket_id}",
        )

    def health(self, tenant: str = DEFAULT_TENANT) -> Dict[str, Any]:
        """The ``/v1/healthz`` payload: liveness plus queue state for
        one tenant's service."""
        service = self.registry.get(tenant)
        payload = {
            "ok": True,
            "status": "closing" if self.closing.is_set() else "serving",
            "tenant": tenant,
            "kg_version": service.kg_version,
            "documents_ingested": service.documents_ingested,
            "pending": service.pending_count,
            "batches_drained": service.batches_drained,
            "documents_drained": service.documents_drained,
            "subscriptions": service.subscription_count,
            "subscription_errors": service.subscription_errors,
        }
        if self.shared_cache is not None:
            payload["shared_cache"] = self.shared_cache.stats()
        return payload


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routing and framing; all state lives on the gateway/service."""

    protocol_version = "HTTP/1.1"
    server_version = "nous-gateway/1"
    # Headers and body go out as separate sends; with Nagle on, that
    # write-write-read pattern stalls ~40ms per response on the client's
    # delayed ACK — a flat tax that would dwarf most queries.
    disable_nagle_algorithm = True
    server: _GatewayHTTPServer
    # Set per subscribe stream when the client accepts gzip; None means
    # frames go out uncompressed.
    _stream_compressor: Optional["zlib._Compress"] = None
    # Resolved per request by _dispatch.
    _tenant: str = DEFAULT_TENANT
    _service: Optional[ServiceLike] = None

    @property
    def gateway(self) -> NousGateway:
        return self.server.gateway

    @property
    def service(self) -> ServiceLike:
        assert self._service is not None  # set by _dispatch
        return self._service

    def setup(self) -> None:
        # Bound every blocking socket operation: a client that vanishes
        # without FIN/RST must not pin a keep-alive handler thread
        # forever.  (Subscribe streams stay alive regardless — they
        # only write, and each heartbeat write resets the clock.)
        self.timeout = self.gateway.config.idle_timeout
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:
        if self.gateway.config.log_requests:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        body: Mapping[str, Any],
        extra_close: bool = False,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        encoding = None
        if len(data) >= self.gateway.config.gzip_min_bytes and accepts_gzip(
            self.headers.get("Accept-Encoding")
        ):
            data = gzip_bytes(data)
            encoding = "gzip"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        # Negotiated representation: caches must key on Accept-Encoding.
        self.send_header("Vary", "Accept-Encoding")
        if encoding is not None:
            self.send_header("Content-Encoding", encoding)
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        self.send_header("Content-Length", str(len(data)))
        if extra_close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def _send_envelope(
        self,
        envelope: ApiResponse,
        extra_headers: Optional[Mapping[str, str]] = None,
        extra_close: bool = False,
        status: Optional[int] = None,
    ) -> None:
        if status is None:
            if envelope.ok:
                status = 202 if envelope.kind == "ticket" else 200
            else:
                assert envelope.error is not None
                status = status_for_error(envelope.error.code)
        self._send_json(
            status,
            envelope.to_dict(),
            extra_headers=extra_headers,
            extra_close=extra_close,
        )

    def _send_gateway_error(
        self,
        code: str,
        message: str,
        extra_close: bool = False,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> None:
        envelope = gateway_error(code, message)
        assert envelope.error is not None
        self._send_json(
            status_for_error(code),
            envelope.to_dict(),
            extra_close=extra_close,
            extra_headers=extra_headers,
        )

    def _read_json_body(self) -> Optional[Dict[str, Any]]:
        """Read and parse the request body; replies and returns ``None``
        on any transport-level problem."""
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            # extra_close on the unread-body error paths: whatever the
            # client actually sent stays in the socket and would be
            # parsed as the next keep-alive request.
            self._send_gateway_error(
                "http.bad_request", "Content-Length header is required",
                extra_close=True,
            )
            return None
        try:
            length = int(length_header)
        except ValueError:
            length = -1
        if length < 0:
            # A negative length would turn rfile.read() into
            # read-to-EOF and hang this handler thread on a keep-alive
            # socket.
            self._send_gateway_error(
                "http.bad_request",
                f"invalid Content-Length: {length_header}",
                extra_close=True,
            )
            return None
        limit = self.gateway.config.max_body_bytes
        if length > limit:
            # Reject before reading; the unread body forces this
            # connection closed (keep-alive cannot resynchronise).
            self._send_gateway_error(
                "http.payload_too_large",
                f"body of {length} bytes exceeds limit of {limit}",
                extra_close=True,
            )
            return None
        raw = self.rfile.read(length)
        encoding = (self.headers.get("Content-Encoding") or "identity").strip().lower()
        if encoding == "gzip":
            try:
                # Re-apply the body cap *after* decompression: the
                # pre-read check above only saw the compressed length,
                # and a small gzip body can inflate arbitrarily.
                raw = gunzip_bytes(raw, limit=limit)
            except ValueError:
                self._send_gateway_error(
                    "http.payload_too_large",
                    f"decompressed body exceeds limit of {limit} bytes",
                )
                return None
            except zlib.error as exc:
                self._send_gateway_error(
                    "http.bad_request",
                    f"Content-Encoding is gzip but the body is not: {exc}",
                )
                return None
        elif encoding != "identity":
            self._send_gateway_error(
                "http.bad_request",
                f"unsupported Content-Encoding: {encoding!r} "
                "(gzip and identity are supported)",
            )
            return None
        try:
            data = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_gateway_error(
                "http.bad_json", f"request body is not valid JSON: {exc}"
            )
            return None
        if not isinstance(data, dict):
            self._send_gateway_error(
                "http.bad_json", "request body must be a JSON object"
            )
            return None
        return data

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _refuse_if_closing(self) -> bool:
        """In-flight keep-alive connections may still issue requests
        while the gateway drains; answer 503 instead of a reset."""
        if not self.gateway.closing.is_set():
            return False
        self._send_gateway_error(
            "http.unavailable", "gateway is shutting down", extra_close=True
        )
        return True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("DELETE")

    def _dispatch(self, method: str) -> None:
        """Route-table dispatch: resolve the row, the tenant, and the
        tenant's service, then call the row's handler."""
        if self._refuse_if_closing():
            return
        parts = urlsplit(self.path)
        params = parse_qs(parts.query)
        path = parts.path.rstrip("/") or "/"
        route, captures, allowed = _resolve_route(method, path)
        # Non-GET error paths may leave an unread body in the socket;
        # closing keeps the next keep-alive request parseable.
        body_unread = method != "GET"
        if route is None:
            if allowed:
                verbs = ", ".join(sorted(allowed))
                self._send_gateway_error(
                    "http.method_not_allowed",
                    f"{path} requires {verbs}",
                    extra_close=body_unread,
                    extra_headers={"Allow": verbs},
                )
            else:
                self._send_gateway_error(
                    "http.not_found",
                    f"no route for {method} {path}",
                    extra_close=body_unread,
                )
            return
        # Tenant precedence: path capture beats the header alias beats
        # the default (documented in docs/TENANCY.md).
        tenant = captures.pop("tenant", None)
        if tenant is None:
            header = self.headers.get(TENANT_HEADER)
            tenant = (header or "").strip() or DEFAULT_TENANT
        self._tenant = tenant
        self._service = None
        if route.needs_service:
            try:
                self._service = self.gateway.registry.get(tenant)
            except ReproError as exc:
                # tenancy.unknown → 404 with the structured envelope.
                self._send_envelope(
                    ApiResponse.failure(exc), extra_close=body_unread
                )
                return
        handler = getattr(self, route.handler)
        handler(captures, params)

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    @staticmethod
    def _etag_for(tenant: str, kg_version: int) -> str:
        """The ``/v1/stats`` validator: tenant id + composite KG stamp.
        Any accepted fact, minted entity or window eviction moves the
        stamp, so it is exactly the statistics payload's freshness key —
        and the tenant id keeps two tenants at the same stamp from
        validating each other's cached stats through a shared proxy."""
        return f'"kg-{tenant}-{kg_version}"'

    def _route_healthz(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        self._send_json(200, self.gateway.health(self._tenant))

    def _route_stats(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        service = self.service
        etag = self._etag_for(self._tenant, service.kg_version)
        if self.headers.get("If-None-Match", "").strip() == etag:
            # The stamp pre-check costs one version read — the whole
            # statistics computation is skipped on a conditional hit.
            self.send_response(304)
            self.send_header("ETag", etag)
            self.send_header("Vary", "Accept-Encoding")
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        envelope = service.statistics()
        headers: Dict[str, str] = {}
        if envelope.ok and envelope.kg_version >= 0:
            # Stamp the ETag from the envelope itself (not the pre-read
            # version): statistics and validator must describe the same
            # state even if an ingest landed in between.
            headers["ETag"] = self._etag_for(self._tenant, envelope.kg_version)
        self._send_envelope(envelope, extra_headers=headers)

    def _route_query(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        data = self._read_json_body()
        if data is None:
            return
        try:
            request = QueryRequest.from_dict(data)
        except Exception:  # noqa: BLE001 - malformed wire dict
            self._send_gateway_error(
                "http.bad_request",
                'body must be a QueryRequest wire dict: {"text": "..."}',
            )
            return
        cache = self.gateway.shared_cache
        if cache is not None:
            hit = cache.get(
                request.text, self.service.kg_version, tenant=self._tenant
            )
            if hit is not None:
                status, body = hit
                self._send_json(status, body)
                return
        envelope = self.service.query(request)
        if (
            cache is not None
            and envelope.ok
            and envelope.kg_version >= 0
            and self._query_cacheable(request.text)
        ):
            # Keyed under the stamp the envelope reports — a query that
            # minted an entity moved the stamp mid-execution, and its
            # result describes the *minted* world.
            cache.put(
                request.text,
                envelope.kg_version,
                200,
                envelope.to_dict(),
                tenant=self._tenant,
            )
        self._send_envelope(envelope)

    @staticmethod
    def _query_cacheable(text: str) -> bool:
        """Mirror of the engine cache's rule: trending evaluation
        consumes miner transition state, so its results are not pure
        functions of the stamp and must never be shared."""
        try:
            return not isinstance(parse_query(text), TrendingQuery)
        except ReproError:
            return False

    def _route_ingest(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        data = self._read_json_body()
        if data is None:
            return
        try:
            request = IngestRequest.from_dict(data)
        except Exception:  # noqa: BLE001 - malformed wire dict
            self._send_gateway_error(
                "http.bad_request",
                "body must be an IngestRequest wire dict "
                '({"text": "...", "doc_id": ..., "date": ..., "source": ...})',
            )
            return
        service = self.service
        try:
            ticket = service.submit(request)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            self._send_envelope(ApiResponse.failure(exc, kind="ingest"))
            return
        if not service.draining_in_background:
            # No background drainer on this service: drain inline so the
            # ticket is always eventually fulfilled.
            service.flush()
        if _first(params, "wait") in _TRUTHY:
            try:
                envelope = ticket.result(
                    timeout=self.gateway.config.wait_timeout
                )
            except ReproError:
                self._send_gateway_error(
                    "http.timeout",
                    f"ingest of {request.doc_id!r} not drained within "
                    f"{self.gateway.config.wait_timeout}s (still queued)",
                )
                return
            self._send_envelope(envelope)
            return
        ticket_id = self.gateway._register_ticket(ticket, self._tenant)
        self._send_envelope(
            self.gateway._ticket_envelope(ticket_id, ticket, self._tenant)
        )

    def _route_ticket_poll(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        raw_id = captures["ticket_id"]
        try:
            ticket_id = int(raw_id)
        except ValueError:
            self._send_gateway_error(
                "http.bad_request", f"ticket id must be an integer: {raw_id!r}"
            )
            return
        ticket = self.gateway._lookup_ticket(ticket_id, self._tenant)
        if ticket is None:
            self._send_gateway_error(
                "http.not_found", f"unknown ticket {ticket_id}"
            )
            return
        if ticket.done():
            self._send_envelope(ticket.result(timeout=0))
        else:
            self._send_envelope(
                self.gateway._ticket_envelope(ticket_id, ticket, self._tenant)
            )

    # ------------------------------------------------------------------
    # tenant admin surface
    # ------------------------------------------------------------------
    def _route_tenants_list(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        self._send_json(
            200,
            {
                "ok": True,
                "default": DEFAULT_TENANT,
                "tenants": self.gateway.registry.describe(),
            },
        )

    def _route_tenants_create(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        data = self._read_json_body()
        if data is None:
            return
        try:
            spec = TenantSpec.from_dict(data)
            info = self.gateway.registry.create(spec)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            # tenancy → 400, tenancy.exists → 409.
            self._send_envelope(ApiResponse.failure(exc))
            return
        self._send_json(201, {"ok": True, "tenant": info})

    def _route_tenants_delete(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        drain = (_first(params, "drain") or "1") in _TRUTHY
        try:
            result = self.gateway.registry.delete(captures["name"], drain=drain)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            # tenancy.unknown → 404, deleting 'default' → tenancy 400.
            self._send_envelope(ApiResponse.failure(exc))
            return
        self._send_json(200, {"ok": True, **result})

    # ------------------------------------------------------------------
    # shard introspection/control routes (consumed by RemoteShardClient)
    # ------------------------------------------------------------------
    def _route_shard(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        """``/v1/shard/<route>``: the service surface a scatter-gather
        router needs beyond the public envelopes (full support tables,
        atomic batch submission, placement accounting, explicit flush /
        refresh).  Served whenever the resolved service exposes the hook
        — a monolithic ``NousService`` worker does; routes a fronted
        service lacks answer 404."""
        route = captures["shard_route"]
        handler = getattr(self, f"_shard_{route}")
        if _SHARD_ROUTES[route] == "GET":
            handler()
            return
        data = self._read_json_body()
        if data is None:
            return
        handler(data)

    def _shard_hook(self, name: str) -> Optional[Any]:
        hook = getattr(self.service, name, None)
        if hook is None:
            self._send_gateway_error(
                "http.not_found",
                f"the served service does not expose {name!r}",
            )
        return hook

    def _shard_stream_view(self) -> None:
        hook = self._shard_hook("stream_view")
        if hook is None:
            return
        view = hook()
        self._send_json(
            200,
            {
                "ok": True,
                "supports": [
                    [pattern_to_wire(pattern), support]
                    for pattern, support in view.supports.items()
                ],
                "min_support": view.min_support,
                "window_edges": view.window_edges,
                "last_timestamp": view.last_timestamp,
                "kg_version": view.kg_version,
            },
        )

    def _shard_extracted_facts(self) -> None:
        hook = self._shard_hook("extracted_fact_keys")
        if hook is None:
            return
        self._send_json(
            200,
            {
                "ok": True,
                "facts": [list(key) for key in hook()],
                "kg_version": self.service.kg_version,
            },
        )

    def _shard_submit(self, data: Dict[str, Any]) -> None:
        """Atomic batch submission: the whole document list lands in the
        queue before the drainer carves its next batch — the wire form
        of ``submit_many``, which single-document POSTs cannot emulate
        (the drainer could slice a half-arrived batch, changing
        collective-linking co-location)."""
        documents = data.get("documents")
        if not isinstance(documents, list):
            self._send_gateway_error(
                "http.bad_request",
                'body must be {"documents": [IngestRequest wire dicts]}',
            )
            return
        try:
            requests = [IngestRequest.from_dict(doc) for doc in documents]
        except Exception:  # noqa: BLE001 - malformed wire dict
            self._send_gateway_error(
                "http.bad_request",
                "every document must be an IngestRequest wire dict",
            )
            return
        if len(requests) > self.gateway.config.max_tickets:
            # More tickets than the registry can hold would silently
            # invalidate the batch's own earliest tickets; refuse
            # loudly so the caller splits the batch (or serves with a
            # larger max_tickets).
            self._send_gateway_error(
                "http.payload_too_large",
                f"batch of {len(requests)} documents exceeds the ticket "
                f"registry capacity of {self.gateway.config.max_tickets}; "
                "split the batch or raise GatewayConfig.max_tickets",
            )
            return
        service = self.service
        try:
            tickets = service.submit_many(requests)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            self._send_envelope(ApiResponse.failure(exc, kind="ingest"))
            return
        if not service.draining_in_background:
            service.flush()
        self._send_json(
            200,
            {
                "ok": True,
                "tickets": [
                    {
                        "ticket_id": self.gateway._register_ticket(
                            ticket, self._tenant
                        ),
                        "doc_id": ticket.doc_id,
                    }
                    for ticket in tickets
                ],
            },
        )

    def _shard_flush(self, data: Dict[str, Any]) -> None:
        timeout = data.get("timeout")
        try:
            self.service.flush(
                timeout=None if timeout is None else float(timeout)
            )
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            self._send_envelope(ApiResponse.failure(exc, kind="flush"))
            return
        self._send_json(
            200, {"ok": True, "kg_version": self.service.kg_version}
        )

    def _shard_snapshot(self, data: Dict[str, Any]) -> None:
        """Force a full on-disk snapshot (requires the service to run
        with a data directory; a storage-less worker answers the
        ``storage`` failure envelope)."""
        hook = self._shard_hook("snapshot")
        if hook is None:
            return
        try:
            version = hook()
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            self._send_envelope(ApiResponse.failure(exc, kind="snapshot"))
            return
        # A monolith answers its scalar stamp; a fronted sharded
        # service answers the per-shard tuple — fold to the composite.
        scalar = (
            sum(version) if isinstance(version, (tuple, list)) else int(version)
        )
        self._send_json(200, {"ok": True, "kg_version": scalar})

    def _shard_compute(self, data: Dict[str, Any]) -> None:
        """One distributed-compute superstep: the body is a
        :class:`~repro.compute.protocol.ComputeRequest` wire dict and
        the answer wraps the shard's ``ComputeResponse`` verbatim.
        Steps are stateless, so a recovered worker can re-run any round
        the dead one never answered."""
        hook = self._shard_hook("compute_step")
        if hook is None:
            return
        try:
            result = hook(data)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            self._send_envelope(ApiResponse.failure(exc, kind="compute"))
            return
        self._send_json(200, {"ok": True, "result": result})

    def _shard_ingest_facts(self, data: Dict[str, Any]) -> None:
        hook = self._shard_hook("ingest_facts")
        if hook is None:
            return
        facts = data.get("facts")
        date = data.get("date")
        if not isinstance(facts, list):
            self._send_gateway_error(
                "http.bad_request",
                'body must be {"facts": [[s, p, o], ...], ...}',
            )
            return
        try:
            triples = [(str(s), str(p), str(o)) for s, p, o in facts]
            confidence = float(data.get("confidence", 0.9))
        except (TypeError, ValueError):
            # A fact that is not an (s, p, o) triple, or a non-numeric
            # confidence: a malformed body must answer 400, not crash
            # the handler thread.
            self._send_gateway_error(
                "http.bad_request",
                'body must be {"facts": [[s, p, o], ...], "date": ..., '
                '"source": ..., "confidence": <number>}',
            )
            return
        self._send_envelope(
            hook(
                triples,
                date=None if date is None else str(date),
                source=str(data.get("source", "structured")),
                confidence=confidence,
            )
        )

    def _shard_refresh(self, data: Dict[str, Any]) -> None:
        hook = self._shard_hook("refresh_subscriptions")
        if hook is None:
            return
        try:
            updates = hook()
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            self._send_envelope(ApiResponse.failure(exc, kind="refresh"))
            return
        self._send_json(
            200,
            {
                "ok": True,
                "updates": [update.to_dict() for update in updates],
                "kg_version": self.service.kg_version,
            },
        )

    # ------------------------------------------------------------------
    # the subscribe stream
    # ------------------------------------------------------------------
    def _route_subscribe(
        self, captures: Dict[str, str], params: Dict[str, List[str]]
    ) -> None:
        query_text = _first(params, "q")
        if query_text is None:
            self._send_gateway_error(
                "http.bad_request", "subscribe requires a ?q= query parameter"
            )
            return
        config = self.gateway.config
        try:
            heartbeat = float(
                _first(params, "heartbeat") or config.heartbeat_interval
            )
            max_seconds = float(_first(params, "max_seconds") or 0.0)
            max_updates = int(_first(params, "max_updates") or 0)
            min_interval = float(_first(params, "min_interval") or 0.0)
            max_rate = float(_first(params, "max_rate") or 0.0)
        except ValueError:
            heartbeat = max_seconds = min_interval = max_rate = float("nan")
            max_updates = 0
        # inf/nan would silently disable the heartbeat (and with it
        # dead-client detection) or make the max_seconds deadline
        # unreachable — refuse them with the non-numeric values.
        if not all(
            math.isfinite(value)
            for value in (heartbeat, max_seconds, min_interval, max_rate)
        ):
            self._send_gateway_error(
                "http.bad_request",
                "heartbeat/max_seconds/max_updates/min_interval/max_rate "
                "must be finite numbers",
            )
            return
        heartbeat = max(heartbeat, 0.01)
        max_seconds = max(max_seconds, 0.0)
        # The two throttle spellings compose to one coalescing window:
        # at most one update frame per `throttle` seconds.
        throttle = max(min_interval, 0.0)
        if max_rate > 0:
            throttle = max(throttle, 1.0 / max_rate)
        snapshot = _first(params, "snapshot") in _TRUTHY
        full_view = _first(params, "full") in _TRUTHY
        service = self.service
        row_kind: Optional[str] = None
        if throttle > 0:
            try:
                # Net-diff coalescing re-keys rows exactly the way
                # delta_rows did; the kind picks the keying rule.
                row_kind = kind_of_query(parse_query(query_text))
            except ReproError as exc:
                self._send_envelope(ApiResponse.failure(exc))
                return
        wake = threading.Event()
        try:
            # Quota *before* registration: an over-budget tenant's
            # subscribe answers the structured 429 without ever touching
            # the service.
            self.gateway.registry.ensure_subscription_capacity(self._tenant)
            subscription = service.subscribe(
                query_text,
                callback=lambda _update: wake.set(),
                trending_full_view=full_view,
            )
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            self._send_envelope(ApiResponse.failure(exc))
            return
        try:
            self._stream_subscription(
                subscription, wake, heartbeat, max_seconds, max_updates,
                snapshot=snapshot, throttle=throttle, row_kind=row_kind,
            )
        finally:
            # Whatever ended the stream — client disconnect, limits,
            # shutdown — the subscription is detached so the drainer
            # never evaluates for a dead consumer.
            service.unsubscribe(subscription)
            self.close_connection = True

    def _stream_subscription(
        self,
        subscription: SubscriptionLike,
        wake: threading.Event,
        heartbeat: float,
        max_seconds: float,
        max_updates: int,
        snapshot: bool = False,
        throttle: float = 0.0,
        row_kind: Optional[str] = None,
    ) -> None:
        # Per-frame gzip when the subscriber advertises it: each frame
        # is deflate-compressed and sync-flushed into its own chunk, so
        # delivery latency is unchanged while trending full-view frames
        # (whole support tables) shrink several-fold.  One compressor
        # spans the stream — later frames deflate against earlier ones,
        # which is where most of the win on repetitive frames comes from.
        compressor = (
            zlib.compressobj(6, zlib.DEFLATED, 31)
            if accepts_gzip(self.headers.get("Accept-Encoding"))
            else None
        )
        self._stream_compressor = compressor
        self.send_response(200)
        self.send_header("Content-Type", NDJSON_CONTENT_TYPE)
        self.send_header("Cache-Control", "no-store")
        if compressor is not None:
            self.send_header("Content-Encoding", "gzip")
            self.send_header("Vary", "Accept-Encoding")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        service = self.service
        started = time.monotonic()
        deadline = None if max_seconds <= 0 else started + max_seconds
        # Per-stream monotonic stamp floor.  Update stamps are read when
        # a delta is *created*, heartbeat stamps when a frame is *sent*;
        # a delta created concurrently with a heartbeat read can carry
        # the older stamp yet hit the wire later.  The window is
        # microscopic for an in-process version read but real for a
        # cluster whose composite stamp is assembled from per-shard
        # reads (milliseconds over the wire in process mode), so the
        # documented per-stream monotonicity is enforced here, by
        # construction, with a floor clamp.
        stamp_floor = service.kg_version
        if not self._send_chunk(
            encode_frame(
                hello_frame(subscription, stamp_floor, snapshot=snapshot)
            )
        ):
            return
        # Throttled streams coalesce: instead of forwarding every
        # update, remember the row map as of the last *sent* frame and,
        # once per `throttle` window, emit the net added/removed diff
        # against the subscription's current rows.  An add that was
        # undone within the window nets to nothing and never hits the
        # wire.
        coalesce = throttle > 0 and row_kind is not None
        sent_rows: Dict[str, Dict[str, Any]] = {}
        if coalesce:
            kind = row_kind or ""
            sent_rows = {
                key_of_row(kind, row): dict(row)
                for row in subscription.current_rows
            }
        dirty = False
        pending_stamp = stamp_floor
        last_update_sent = started
        last_sent = time.monotonic()
        sent_updates = 0
        reason = "shutdown"

        def flush_coalesced(now: float) -> Tuple[bool, bool]:
            """Emit the net diff since the last sent frame.  Returns
            ``(client alive, hit max_updates)``."""
            nonlocal sent_rows, dirty, stamp_floor
            nonlocal last_update_sent, last_sent, sent_updates
            kind = row_kind or ""
            now_rows = {
                key_of_row(kind, row): dict(row)
                for row in subscription.current_rows
            }
            added = tuple(
                row
                for key, row in now_rows.items()
                if sent_rows.get(key) != row
            )
            removed = tuple(
                row for key, row in sent_rows.items() if key not in now_rows
            )
            sent_rows = now_rows
            dirty = False
            last_update_sent = now
            if not added and not removed:
                # The window's deltas net to zero: nothing to say.
                return True, False
            stamp_floor = max(stamp_floor, pending_stamp)
            frame = update_frame(
                StandingQueryUpdate(
                    subscription_id=subscription.id,
                    query_text=subscription.query_text,
                    kg_version=stamp_floor,
                    added=added,
                    removed=removed,
                )
            )
            if not self._send_chunk(encode_frame(frame)):
                return False, False
            last_sent = now
            sent_updates += 1
            return True, bool(max_updates and sent_updates >= max_updates)

        while not self.gateway.closing.is_set():
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                reason = "max_seconds"
                break
            timeout = self.gateway.config.poll_interval
            if deadline is not None:
                timeout = min(timeout, max(deadline - now, 0.0))
            wake.wait(timeout=timeout)
            wake.clear()
            updates = subscription.poll()
            if coalesce:
                if updates:
                    dirty = True
                    pending_stamp = max(
                        pending_stamp,
                        max(update.kg_version for update in updates),
                    )
                now = time.monotonic()
                if dirty and now - last_update_sent >= throttle:
                    alive, limit_hit = flush_coalesced(now)
                    if not alive:
                        return  # client went away mid-stream: detach
                    if limit_hit:
                        reason = "max_updates"
                        break
                if now - last_sent >= heartbeat:
                    stamp_floor = max(stamp_floor, service.kg_version)
                    frame = heartbeat_frame(
                        stamp_floor, service.pending_count
                    )
                    if not self._send_chunk(encode_frame(frame)):
                        return  # dead client detected by the keepalive
                    last_sent = now
                continue
            for update in updates:
                frame = update_frame(update)
                stamp_floor = max(stamp_floor, update.kg_version)
                frame["kg_version"] = stamp_floor
                if not self._send_chunk(encode_frame(frame)):
                    return  # client went away mid-stream: detach
                sent_updates += 1
                if max_updates and sent_updates >= max_updates:
                    reason = "max_updates"
                    break
            else:
                now = time.monotonic()
                if updates:
                    last_sent = now
                elif now - last_sent >= heartbeat:
                    stamp_floor = max(stamp_floor, service.kg_version)
                    frame = heartbeat_frame(
                        stamp_floor, service.pending_count
                    )
                    if not self._send_chunk(encode_frame(frame)):
                        return  # dead client detected by the keepalive
                    last_sent = now
                continue
            break  # inner break (max_updates) falls through here
        if coalesce and dirty and reason != "max_updates":
            # The stream is ending inside a throttle window: deliver the
            # tail as one last net diff rather than dropping it.
            alive, _limit = flush_coalesced(time.monotonic())
            if not alive:
                return
        self._send_chunk(encode_frame(bye_frame(reason)))
        try:
            if self._stream_compressor is not None:
                # Close the gzip member so the client's decompressor sees
                # a complete stream (sync-flushed frames are already
                # self-contained, so truncation on error paths is benign).
                tail = self._stream_compressor.flush(zlib.Z_FINISH)
                if tail:
                    self.wfile.write(
                        f"{len(tail):X}\r\n".encode("ascii") + tail + b"\r\n"
                    )
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except OSError:
            pass

    def _send_chunk(self, payload: bytes) -> bool:
        """Write one chunked-transfer frame; False when the client is
        gone (broken pipe / reset)."""
        compressor = self._stream_compressor
        if compressor is not None:
            # Sync-flush so the frame is decodable the moment the chunk
            # lands — no buffering latency added by compression.
            payload = compressor.compress(payload) + compressor.flush(
                zlib.Z_SYNC_FLUSH
            )
            if not payload:
                return True
        try:
            self.wfile.write(
                f"{len(payload):X}\r\n".encode("ascii") + payload + b"\r\n"
            )
            self.wfile.flush()
            return True
        except OSError:
            return False


def _first(params: Dict[str, List[str]], key: str) -> Optional[str]:
    values = params.get(key)
    if not values:
        return None
    return str(values[0])
