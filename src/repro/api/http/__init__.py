"""The HTTP gateway: the service's wire envelopes over the network.

This package is the "web" half of the paper's §4 demo ("query execution
using both web and command line interface"), built entirely on the
stdlib (``http.server`` / ``http.client`` — no new dependencies):

- :mod:`repro.api.http.server` — :class:`NousGateway`, a threaded HTTP
  server exposing ``/v1/ingest``, ``/v1/query``, ``/v1/stats``,
  ``/v1/healthz`` and the streaming ``/v1/subscribe`` endpoint over an
  existing :class:`~repro.api.service.NousService`.
- :mod:`repro.api.http.client` — :class:`ClientSession`, which
  round-trips the same JSON codecs so remote results compare equal to
  in-process ones.
- :mod:`repro.api.http.protocol` — the shared contract: the
  error-code→HTTP-status table and the NDJSON frame format of the
  subscribe stream.

Start one with ``nous serve`` or::

    from repro.api.http import ClientSession, GatewayConfig, NousGateway

    with NousGateway(service, GatewayConfig(port=8420)) as gateway:
        with ClientSession(gateway.url) as client:
            client.ingest("DJI acquired SkyPixel in March 2015.")
            print(client.query("tell me about DJI").rendered)

Endpoint-by-endpoint request/response examples are in ``docs/API.md``.
"""

from repro.api.http.client import ClientSession, SubscriptionStream
from repro.api.http.protocol import (
    GZIP_MIN_BYTES,
    HTTP_STATUS_BY_CODE,
    NDJSON_CONTENT_TYPE,
    accepts_gzip,
    gateway_error,
    gunzip_bytes,
    gzip_bytes,
    status_for_error,
)
from repro.api.http.qcache import SharedQueryCache
from repro.api.http.server import GatewayConfig, NousGateway

__all__ = [
    "ClientSession",
    "SubscriptionStream",
    "GatewayConfig",
    "NousGateway",
    "SharedQueryCache",
    "GZIP_MIN_BYTES",
    "HTTP_STATUS_BY_CODE",
    "NDJSON_CONTENT_TYPE",
    "accepts_gzip",
    "gateway_error",
    "gunzip_bytes",
    "gzip_bytes",
    "status_for_error",
]
