"""The HTTP-level contract of the gateway (documented in ``docs/API.md``).

Two things live here, shared by :mod:`repro.api.http.server` and
:mod:`repro.api.http.client` so they cannot drift apart:

- **Status mapping** — :data:`HTTP_STATUS_BY_CODE` maps every
  :class:`~repro.api.envelopes.ApiError` taxonomy code (plus the
  gateway's own ``http.*`` codes for transport-level failures) onto an
  HTTP status; :func:`status_for_error` resolves unknown codes by
  walking dotted prefixes (``query.parse`` -> ``query``) and defaults
  to 500.
- **NDJSON framing** — ``GET /v1/subscribe`` streams standing-query
  deltas as newline-delimited JSON objects.  Every frame carries an
  ``event`` field: ``subscribed`` (hello, first frame), ``update``
  (a :class:`~repro.api.service.StandingQueryUpdate` wire dict),
  ``heartbeat`` (keepalive while idle) and ``bye`` (clean end of
  stream).  :func:`encode_frame` / the ``*_frame`` builders produce
  them; the client parses one JSON object per line.
- **Compression negotiation** — bodies travel gzip-compressed when
  both sides agree (documented in ``docs/PERFORMANCE.md``).  Responses:
  a request whose ``Accept-Encoding`` admits gzip
  (:func:`accepts_gzip`) gets bodies of
  :attr:`~repro.api.http.server.GatewayConfig.gzip_min_bytes` bytes or
  more compressed (:func:`gzip_bytes`, deterministic — ``mtime=0``).
  Requests: a client may send ``Content-Encoding: gzip``; the server
  inflates with :func:`gunzip_bytes`, whose ``limit`` re-applies
  ``max_body_bytes`` *after* decompression so a tiny bomb cannot smuggle
  an oversized body past the pre-read length check.
"""

from __future__ import annotations

import gzip
import json
import zlib
from typing import Any, Dict, Mapping, Optional

from repro.api.base import SubscriptionLike
from repro.api.envelopes import ApiError, ApiResponse
from repro.api.service import StandingQueryUpdate

#: Content type of the streaming subscribe endpoint.
NDJSON_CONTENT_TYPE = "application/x-ndjson"

#: HTTP status for every error-taxonomy code the gateway can emit.
#: Service codes come from :data:`repro.api.envelopes._ERROR_TAXONOMY`;
#: ``http.*`` codes are minted by the gateway itself before a request
#: ever reaches the service.
HTTP_STATUS_BY_CODE: Dict[str, int] = {
    # service taxonomy ------------------------------------------------
    "query.parse": 400,   # the query string does not parse
    "query": 422,         # parsed but unanswerable (unknown entity ...)
    "config": 400,        # bad request values (unparseable date ...)
    "qa": 422,
    "cluster": 502,       # a shard worker died or stopped answering
    "mining.pattern": 422,
    "mining": 500,
    "graph": 500,
    "kb": 500,
    "nlp": 500,
    "nlp.extraction": 500,  # extraction pool worker died twice; batch aborted
    "linking": 500,
    "storage": 500,       # snapshot/WAL write or recovery-replay failure
    "tenancy": 400,       # bad tenant name or malformed tenant spec
    "tenancy.unknown": 404,  # request named a tenant the registry lacks
    "tenancy.exists": 409,   # tenant created twice
    "tenancy.quota": 429,    # tenant is over its standing-query budget
    "internal": 500,
    # gateway (transport) codes --------------------------------------
    "http.bad_request": 400,        # missing/invalid fields or params
    "http.bad_json": 400,           # body is not valid JSON
    "http.not_found": 404,          # unknown route or ticket id
    "http.method_not_allowed": 405,
    "http.payload_too_large": 413,  # body exceeds max_body_bytes
    "http.timeout": 504,            # ?wait=1 ingest missed its deadline
    "http.unavailable": 503,        # gateway is shutting down
}


def status_for_error(code: str) -> int:
    """Resolve an error-taxonomy code to an HTTP status.

    Unknown codes fall back to their nearest dotted prefix (so a future
    ``query.plan`` code would inherit ``query``'s 422), then to 500.
    """
    probe = code
    while probe:
        status = HTTP_STATUS_BY_CODE.get(probe)
        if status is not None:
            return status
        if "." not in probe:
            break
        probe = probe.rsplit(".", 1)[0]
    return 500


def gateway_error(code: str, message: str) -> ApiResponse:
    """A failed envelope minted by the gateway itself (no exception)."""
    return ApiResponse(
        ok=False, kind="error", error=ApiError(code=code, message=message)
    )


# ---------------------------------------------------------------------------
# gzip negotiation
# ---------------------------------------------------------------------------

#: Response bodies below this many bytes are never worth compressing
#: (the gzip header + deflate framing would eat the saving); the
#: server-side threshold is configurable via ``GatewayConfig``, this is
#: the shared default the client mirrors for request bodies.
GZIP_MIN_BYTES = 512


def accepts_gzip(header: Optional[str]) -> bool:
    """Whether an ``Accept-Encoding`` header value admits gzip.

    Token scan over the comma-separated clauses: ``gzip`` (or ``x-gzip``
    or ``*``) accepts unless its q-value is 0.  Absent header means
    identity only — the conservative reading, since every body is
    intelligible uncompressed.
    """
    if not header:
        return False
    for clause in header.split(","):
        token, _, param = clause.strip().partition(";")
        if token.strip().lower() not in ("gzip", "x-gzip", "*"):
            continue
        param = param.strip().lower()
        if param.startswith("q="):
            try:
                return float(param[2:]) > 0.0
            except ValueError:
                return False
        return True
    return False


def gzip_bytes(data: bytes, level: int = 6) -> bytes:
    """Deterministically gzip ``data`` (``mtime=0``: same bytes in,
    same bytes out — wire-level tests and caches rely on it)."""
    return gzip.compress(data, compresslevel=level, mtime=0)


def gunzip_bytes(data: bytes, limit: Optional[int] = None) -> bytes:
    """Inflate a gzip body, refusing to grow past ``limit`` bytes.

    Raises:
        ValueError: The decompressed body would exceed ``limit`` — the
            caller's post-decompression 413 guard.
        zlib.error: ``data`` is not valid gzip.
    """
    if limit is None:
        return gzip.decompress(data)
    decompressor = zlib.decompressobj(wbits=31)
    out = decompressor.decompress(data, limit + 1)
    if len(out) > limit or decompressor.unconsumed_tail:
        raise ValueError(
            f"decompressed body exceeds the limit of {limit} bytes"
        )
    return out


# ---------------------------------------------------------------------------
# NDJSON frames
# ---------------------------------------------------------------------------


def encode_frame(frame: Mapping[str, Any]) -> bytes:
    """One NDJSON line: compact JSON, newline-terminated."""
    return json.dumps(frame, sort_keys=True).encode("utf-8") + b"\n"


def hello_frame(
    subscription: SubscriptionLike, kg_version: int, snapshot: bool = False
) -> Dict[str, Any]:
    """First frame of every subscribe stream.

    With ``snapshot`` (the ``?snapshot=1`` subscribe parameter) the
    frame additionally carries the baseline itself: the subscription's
    current ``rows`` and the ``baseline_version`` they were evaluated
    at.  A remote delta consumer — the cluster's
    :class:`~repro.api.cluster.RemoteShardClient` — needs both to fold
    subsequent added/removed frames into an authoritative row map
    without a second query racing the stream.
    """
    frame = {
        "event": "subscribed",
        "subscription_id": subscription.id,
        "query_text": subscription.query_text,
        "kg_version": kg_version,
        "baseline_rows": len(subscription.current_rows),
    }
    if snapshot:
        frame["rows"] = list(subscription.current_rows)
        frame["baseline_version"] = subscription.last_kg_version
    return frame


def update_frame(update: StandingQueryUpdate) -> Dict[str, Any]:
    """One standing-query delta."""
    frame = update.to_dict()
    frame["event"] = "update"
    return frame


def heartbeat_frame(kg_version: int, pending: int) -> Dict[str, Any]:
    """Keepalive emitted while no deltas flow."""
    return {"event": "heartbeat", "kg_version": kg_version, "pending": pending}


def bye_frame(reason: str) -> Dict[str, Any]:
    """Final frame of a cleanly-ended stream (``max_seconds`` /
    ``max_updates`` reached, or the gateway is shutting down)."""
    return {"event": "bye", "reason": reason}
