"""Cross-process query-result cache keyed on the composite KG stamp.

The engine already carries a per-process result cache
(:mod:`repro.query.engine`); this one lives at the *gateway* so several
gateway replicas fronting the same cluster share hits through a common
directory.  The contract mirrors the engine cache's:

- the key is ``(tenant, query text, wire-format composite stamp)`` —
  any accepted fact, minted entity or window eviction bumps the stamp,
  so a stale entry can never be served for fresh state, and the tenant
  namespace keeps co-resident KGs from sharing entries;
- entries are stored under the stamp the *response* reports
  (``envelope.kg_version``), not the stamp read before execution — a
  query that mints an entity mid-execution moves the stamp, and caching
  under the pre-read value would serve the minted world for the
  unminted key;
- trending queries are never cached (their evaluation consumes miner
  transition state), which the gateway enforces before calling
  :meth:`SharedQueryCache.put`.

Writes are atomic (``tmp`` + ``os.replace``) so replicas racing on one
directory can only ever observe complete entries; a malformed or
half-pruned file reads as a miss.  Eviction is oldest-mtime-first once
``max_entries`` is exceeded.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["SharedQueryCache"]


class SharedQueryCache:
    """A directory of cached ``(status, envelope-dict)`` query results.

    Args:
        directory: Cache directory, created if missing.  Point several
            gateways at the same path to share hits across processes.
        max_entries: Best-effort cap on stored entries; the writer
            prunes oldest-first past it.
    """

    def __init__(self, directory: str, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ConfigError("shared cache max_entries must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def get(
        self, query_text: str, kg_version: int, tenant: str = ""
    ) -> Optional[Tuple[int, Dict[str, Any]]]:
        """The cached ``(status, body)`` for this text at this stamp in
        this tenant's namespace, or ``None``.  Any read problem —
        missing, torn by a concurrent prune, malformed — is a miss,
        never an error."""
        path = self._path(query_text, kg_version, tenant)
        try:
            entry = json.loads(path.read_text("utf-8"))
            status = int(entry["status"])
            body = entry["body"]
            if not isinstance(body, dict):
                raise ValueError("cache body must be an object")
        except (OSError, ValueError, KeyError, TypeError):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return status, body

    def put(
        self,
        query_text: str,
        kg_version: int,
        status: int,
        body: Dict[str, Any],
        tenant: str = "",
    ) -> None:
        """Store a result; atomic, so concurrent readers in other
        gateway processes see either nothing or the whole entry."""
        path = self._path(query_text, kg_version, tenant)
        payload = json.dumps(
            {"status": status, "body": body}, sort_keys=True
        )
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            tmp.write_text(payload, "utf-8")
            os.replace(tmp, path)
        except OSError:
            # A read-only or vanished cache directory degrades to
            # cache-off; queries must keep answering.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        self._prune()

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (this process) plus current entry count."""
        with self._lock:
            hits, misses = self.hits, self.misses
        return {"hits": hits, "misses": misses, "entries": len(self._entries())}

    # ------------------------------------------------------------------
    def _path(self, query_text: str, kg_version: int, tenant: str = "") -> Path:
        # The tenant namespace is folded into the digest: two tenants at
        # the same composite stamp can never validate each other's
        # results through a shared cache directory.  The empty-string
        # default keeps single-service (non-tenant) callers on the
        # legacy key shape.
        digest = hashlib.sha256(
            f"{tenant}|{kg_version}|{query_text}".encode("utf-8")
        ).hexdigest()
        return self.directory / f"q-{digest}.json"

    def _entries(self) -> "list[Path]":
        try:
            return [
                p for p in self.directory.iterdir()
                if p.name.startswith("q-") and p.suffix == ".json"
            ]
        except OSError:
            return []

    def _prune(self) -> None:
        entries = self._entries()
        if len(entries) <= self.max_entries:
            return

        def mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        entries.sort(key=mtime)
        for stale in entries[: len(entries) - self.max_entries]:
            try:
                stale.unlink(missing_ok=True)
            except OSError:
                pass
