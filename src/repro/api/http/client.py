"""``ClientSession``: talk to a running gateway with the same codecs.

The client round-trips the exact wire envelopes the in-process service
uses — :meth:`ClientSession.query` returns an
:class:`~repro.api.envelopes.ApiResponse` built with
``ApiResponse.from_dict``, and :meth:`ClientSession.query_decoded`
additionally runs the payload through
:func:`~repro.api.wire.decode_payload`, so a remote result compares
*equal* to the in-process object for every query payload type.  That
property is what lets tests and examples swap a live server for the
in-process service without changing a line.

One keep-alive connection is reused per session (guarded by a lock, so
a session may be shared across threads); :meth:`ClientSession.subscribe`
opens a dedicated second connection for its NDJSON stream and yields
one frame dict per line.  Everything is stdlib (``http.client``).

Bulk payloads travel compressed when both sides agree (see
``docs/PERFORMANCE.md``): the session advertises ``Accept-Encoding:
gzip`` and inflates compressed responses, gzips request bodies past
:data:`~repro.api.http.protocol.GZIP_MIN_BYTES`, and revalidates
``GET /v1/stats`` with ``If-None-Match`` so an unchanged graph costs a
304 instead of a statistics recomputation.  ``compress=False`` turns
all of it off — the negotiation-matrix tests pair each client mode
against each server mode and demand identical decoded envelopes.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import zlib
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union
from urllib.parse import quote, urlencode, urlsplit

from repro.api.envelopes import ApiResponse, IngestRequest, QueryRequest
from repro.api.http.protocol import GZIP_MIN_BYTES, gunzip_bytes, gzip_bytes
from repro.api.wire import decode_payload
from repro.errors import ConfigError, ReproError


def _connect(
    host: str, port: int, timeout: Optional[float]
) -> http.client.HTTPConnection:
    """An open connection with TCP_NODELAY set.

    http.client writes request headers and body as separate sends; with
    Nagle on, that write-write-read pattern stalls ~40ms per request on
    the peer's delayed ACK — a flat tax that would dwarf most queries.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    conn.connect()
    assert conn.sock is not None
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn


class ClientSession:
    """A client for one gateway base URL (e.g. ``http://127.0.0.1:8420``).

    Args:
        base_url: ``http://host:port`` of a running gateway.
        timeout: Socket timeout for plain requests (subscribe streams
            take their own, since an idle stream legitimately blocks
            between heartbeats).
        compress: Negotiate gzip both ways (advertise
            ``Accept-Encoding: gzip``, compress bulk request bodies).
            ``False`` forces identity encoding end to end.
        tenant: Address this tenant's namespace: every endpoint method
            goes through the ``/v1/t/<tenant>/...`` route tree.  The
            default ``None`` keeps the legacy un-prefixed paths, which
            the gateway resolves to its ``default`` tenant.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        compress: bool = True,
        tenant: Optional[str] = None,
    ) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ConfigError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._compress = compress
        self.tenant = tenant
        # The path prefix every endpoint method routes through; the
        # tenant id is percent-escaped so a malformed name reaches the
        # gateway's validator as one path segment (and answers 404)
        # instead of silently splitting the route.
        self._base = (
            "/v1" if tenant is None else f"/v1/t/{quote(tenant, safe='')}"
        )
        self._lock = threading.Lock()
        self._conn: Optional[http.client.HTTPConnection] = None
        # /v1/stats revalidation state: the last ETag the gateway
        # stamped and the envelope it validated, replayed on a 304.
        self._stats_etag: Optional[str] = None
        self._stats_cache: Optional[ApiResponse] = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
        extra_headers: Optional[Mapping[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """One JSON round trip on the shared keep-alive connection.

        Returns ``(status, body, response-headers)``.  A request whose
        *send* fails on a reused connection is retried once on a fresh
        socket (the server closed an idle keep-alive connection).  A
        lost *response* is only retried for GETs — the server may
        already have processed the request, and re-sending a POST could
        double-ingest.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers: Dict[str, str] = {}
        if body:
            headers["Content-Type"] = "application/json"
            if self._compress and len(body) >= GZIP_MIN_BYTES:
                compressed = gzip_bytes(body)
                if len(compressed) < len(body):
                    body = compressed
                    headers["Content-Encoding"] = "gzip"
        if self._compress:
            headers["Accept-Encoding"] = "gzip"
        if extra_headers:
            headers.update(extra_headers)
        with self._lock:
            while True:
                fresh = self._conn is None
                if self._conn is None:
                    self._conn = _connect(
                        self._host, self._port, self._timeout
                    )
                try:
                    self._conn.request(method, path, body=body, headers=headers)
                except (http.client.HTTPException, OSError):
                    # Send failed: the server cannot have processed a
                    # complete request, so a retry on a fresh socket is
                    # safe for any method (this covers the server
                    # having closed an idle keep-alive connection).
                    self._conn.close()
                    self._conn = None
                    if fresh:
                        raise
                    continue
                try:
                    response = self._conn.getresponse()
                    status = response.status
                    raw = response.read()
                    response_headers = dict(response.headers.items())
                    encoding = (
                        response.getheader("Content-Encoding") or ""
                    ).lower()
                except (http.client.HTTPException, OSError):
                    # The request reached the server but the response
                    # did not come back.  Only idempotent methods may
                    # retry — re-sending a POST here could double-ingest
                    # a document the server already processed.
                    self._conn.close()
                    self._conn = None
                    if fresh or method != "GET":
                        raise
                    continue
                break
        if encoding == "gzip":
            try:
                raw = gunzip_bytes(raw)
            except (EOFError, OSError, zlib.error) as exc:
                raise ReproError(
                    f"gateway sent an undecodable gzip body for "
                    f"{method} {path}: {exc}"
                ) from exc
        if status == 304 and not raw:
            # Conditional GET validated: there is legitimately no body.
            return status, {}, response_headers
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"gateway returned a non-JSON body for {method} {path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ReproError(
                f"gateway returned a non-object body for {method} {path}"
            )
        return status, data, response_headers

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One raw JSON round trip — ``(status, body)``.

        Public for callers that speak endpoints beyond the standard
        surface (the cluster's remote-shard client uses it for the
        ``/v1/shard/*`` introspection routes).
        """
        status, data, _headers = self._request(method, path, payload)
        return status, data

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest]) -> ApiResponse:
        """``POST /v1/query``; returns the decoded envelope (check
        ``.ok`` / ``.error`` — failures do not raise)."""
        if isinstance(request, str):
            request = QueryRequest(text=request)
        _status, data, _headers = self._request(
            "POST", f"{self._base}/query", request.to_dict()
        )
        return ApiResponse.from_dict(data)

    def query_decoded(self, request: Union[str, QueryRequest]) -> Tuple[str, Any]:
        """Query and decode the payload back into its payload object.

        Returns ``(kind, payload)`` where ``payload`` compares equal to
        what in-process ``NousService.query`` + ``decode_payload`` would
        produce.

        Raises:
            ReproError: when the envelope carries an error.
        """
        envelope = self.query(request).raise_for_error()
        assert envelope.payload is not None
        return envelope.kind, decode_payload(envelope.kind, envelope.payload)

    def ingest(
        self,
        request: Union[str, IngestRequest],
        wait: bool = True,
        **fields: Any,
    ) -> ApiResponse:
        """``POST /v1/ingest``.

        Args:
            request: An :class:`IngestRequest`, or the document text
                (with ``doc_id`` / ``date`` / ``source`` as keyword
                arguments).
            wait: Block until the document's micro-batch drains and
                return the ``ingest`` envelope; with ``wait=False`` the
                202 ``ticket`` envelope is returned immediately (poll it
                with :meth:`ticket`).
        """
        if isinstance(request, str):
            request = IngestRequest(text=request, **fields)
        elif fields:
            raise ConfigError(
                "keyword fields are only valid with a text-string request"
            )
        path = f"{self._base}/ingest?wait=1" if wait else f"{self._base}/ingest"
        _status, data, _headers = self._request("POST", path, request.to_dict())
        return ApiResponse.from_dict(data)

    def submit(
        self, request: Union[str, IngestRequest], **fields: Any
    ) -> ApiResponse:
        """Fire-and-poll ingestion: the 202 ``ticket`` envelope."""
        return self.ingest(request, wait=False, **fields)

    def ticket(self, ticket_id: int) -> ApiResponse:
        """``GET /v1/ingest/<id>``: the ``ingest`` envelope once the
        document drained, the ``ticket`` envelope while pending."""
        _status, data, _headers = self._request(
            "GET", f"{self._base}/ingest/{ticket_id}"
        )
        return ApiResponse.from_dict(data)

    def statistics(self) -> ApiResponse:
        """``GET /v1/stats``: the ``statistics`` envelope.

        The session revalidates with ``If-None-Match``: once a
        statistics envelope has been fetched, later calls send the
        gateway's ETag and replay the cached envelope on a 304 — the
        gateway skips recomputing statistics entirely when the
        composite stamp has not moved.
        """
        conditional: Optional[Dict[str, str]] = None
        if self._stats_etag is not None and self._stats_cache is not None:
            conditional = {"If-None-Match": self._stats_etag}
        status, data, headers = self._request(
            "GET", f"{self._base}/stats", extra_headers=conditional
        )
        if status == 304 and self._stats_cache is not None:
            return self._stats_cache
        envelope = ApiResponse.from_dict(data)
        etag = headers.get("ETag")
        if envelope.ok and etag:
            self._stats_etag = etag
            self._stats_cache = envelope
        return envelope

    def healthz(self) -> Dict[str, Any]:
        """``GET /v1/healthz``: liveness + queue state (a plain dict)."""
        _status, data, _headers = self._request("GET", f"{self._base}/healthz")
        return data

    # ------------------------------------------------------------------
    # tenant administration (always un-prefixed: the admin surface
    # operates on the registry, not on one tenant's namespace)
    # ------------------------------------------------------------------
    def tenants(self) -> Dict[str, Any]:
        """``GET /v1/tenants``: every registered tenant (spec plus live
        state for tenants whose service has been built)."""
        _status, data, _headers = self._request("GET", "/v1/tenants")
        return data

    def create_tenant(self, spec: Mapping[str, Any]) -> Dict[str, Any]:
        """``POST /v1/tenants``: register a tenant from a spec wire dict
        (or a ``TenantSpec`` — anything with ``to_dict``).

        Raises:
            ReproError: ``tenancy.exists`` when the name is taken,
                ``tenancy`` when the spec is malformed.
        """
        to_dict = getattr(spec, "to_dict", None)
        payload = dict(to_dict()) if callable(to_dict) else dict(spec)
        status, data, _headers = self._request("POST", "/v1/tenants", payload)
        if status >= 400:
            ApiResponse.from_dict(data).raise_for_error()
        return data

    def delete_tenant(self, name: str, drain: bool = True) -> Dict[str, Any]:
        """``DELETE /v1/tenants/<name>``: unregister a tenant, draining
        and closing its service (``drain=False`` skips the flush).

        Raises:
            ReproError: ``tenancy.unknown`` for a missing tenant,
                ``tenancy`` for an attempt to delete ``default``.
        """
        suffix = "" if drain else "?drain=0"
        status, data, _headers = self._request(
            "DELETE", f"/v1/tenants/{quote(name, safe='')}{suffix}"
        )
        if status >= 400:
            ApiResponse.from_dict(data).raise_for_error()
        return data

    def subscribe(
        self,
        query_text: str,
        heartbeat: Optional[float] = None,
        max_seconds: Optional[float] = None,
        max_updates: Optional[int] = None,
        include_heartbeats: bool = False,
        timeout: Optional[float] = None,
        snapshot: bool = False,
        trending_full_view: bool = False,
        min_interval: Optional[float] = None,
        max_rate: Optional[float] = None,
    ) -> "SubscriptionStream":
        """``GET /v1/subscribe?q=...``: a live NDJSON delta stream.

        Returns a :class:`SubscriptionStream` — iterate it for frame
        dicts (``subscribed`` first, then ``update`` / ``bye``;
        ``heartbeat`` frames are filtered unless requested).  Closing
        the stream disconnects, which detaches the server-side standing
        query.

        Args:
            snapshot: Ask the hello frame to carry the baseline rows
                and their version (``?snapshot=1``) — what a consumer
                folding deltas into an authoritative row map needs.
            trending_full_view: Register the server-side trending
                subscription over the miner's full support table
                (``?full=1``; see
                :meth:`repro.api.service.NousService.subscribe`).
            min_interval: Throttle: at most one update frame per this
                many seconds; deltas inside a window are coalesced into
                one *net* added/removed diff.
            max_rate: Throttle spelled as frames/second (composes with
                ``min_interval``: the stricter of the two wins).

        Raises:
            ReproError: when the server rejects the subscription (e.g.
                an unparseable query).
        """
        params: Dict[str, str] = {"q": query_text}
        if heartbeat is not None:
            params["heartbeat"] = str(heartbeat)
        if max_seconds is not None:
            params["max_seconds"] = str(max_seconds)
        if max_updates is not None:
            params["max_updates"] = str(max_updates)
        if snapshot:
            params["snapshot"] = "1"
        if trending_full_view:
            params["full"] = "1"
        if min_interval is not None:
            params["min_interval"] = str(min_interval)
        if max_rate is not None:
            params["max_rate"] = str(max_rate)
        path = f"{self._base}/subscribe?" + urlencode(params, quote_via=quote)
        return SubscriptionStream(
            self._host,
            self._port,
            path,
            timeout,
            include_heartbeats,
            compress=self._compress,
        )


class SubscriptionStream:
    """Iterator over one subscribe stream's NDJSON frames.

    Owns a dedicated connection: closing it (or leaving a ``with``
    block) is the client-side disconnect the server detaches on.
    """

    def __init__(
        self,
        host: str,
        port: int,
        path: str,
        timeout: Optional[float],
        include_heartbeats: bool,
        compress: bool = True,
    ) -> None:
        self._include_heartbeats = include_heartbeats
        self._conn = _connect(host, port, timeout)
        self._closed = False
        self._decompressor: Optional["zlib._Decompress"] = None
        self._buffer = b""
        try:
            headers = {"Accept-Encoding": "gzip"} if compress else {}
            self._conn.request("GET", path, headers=headers)
            self._response = self._conn.getresponse()
            encoding = (
                self._response.getheader("Content-Encoding") or ""
            ).lower()
            if self._response.status != 200:
                raw = self._response.read()
                if encoding == "gzip":
                    raw = gunzip_bytes(raw)
                data = json.loads(raw)
                ApiResponse.from_dict(data).raise_for_error()
                raise ReproError(
                    f"subscribe rejected with HTTP {self._response.status}"
                )
            if encoding == "gzip":
                self._decompressor = zlib.decompressobj(31)
        except BaseException:
            self._conn.close()
            self._closed = True
            raise

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self

    def _read_frame_line(self) -> bytes:
        """One NDJSON line off the wire, inflating when negotiated.

        The compressed path cannot use ``readline`` (newlines in the
        deflate stream are meaningless); instead ``read1`` takes
        whatever bytes are available — each frame is sync-flushed by
        the server, so a full line is decodable the moment its chunk
        arrives — and lines are split out of the inflated buffer.
        """
        if self._decompressor is None:
            return bytes(self._response.readline())
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[: newline + 1]
                self._buffer = self._buffer[newline + 1:]
                return line
            chunk = self._response.read1(65536)
            if not chunk:
                line, self._buffer = self._buffer, b""
                return line  # EOF: empty bytes ends the stream
            self._buffer += self._decompressor.decompress(chunk)

    def __next__(self) -> Dict[str, Any]:
        """The next frame; ``StopIteration`` on clean end of stream."""
        while True:
            if self._closed:
                raise StopIteration
            try:
                line = self._read_frame_line()
            except (
                OSError,
                ValueError,
                AttributeError,
                zlib.error,
                http.client.HTTPException,
            ):
                # close() may race a blocked readline from another
                # thread; whatever the stdlib raises on the yanked
                # socket, the stream is simply over (the AttributeError
                # is http.client reading through its now-None buffer).
                self.close()
                raise StopIteration from None
            if not line:
                self.close()
                raise StopIteration
            frame = json.loads(line)
            if not isinstance(frame, dict):
                raise ReproError("subscribe stream emitted a non-object frame")
            if (
                frame.get("event") == "heartbeat"
                and not self._include_heartbeats
            ):
                continue
            return frame

    def close(self) -> None:
        """Disconnect (idempotent)."""
        if not self._closed:
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "SubscriptionStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
