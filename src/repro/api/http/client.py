"""``ClientSession``: talk to a running gateway with the same codecs.

The client round-trips the exact wire envelopes the in-process service
uses — :meth:`ClientSession.query` returns an
:class:`~repro.api.envelopes.ApiResponse` built with
``ApiResponse.from_dict``, and :meth:`ClientSession.query_decoded`
additionally runs the payload through
:func:`~repro.api.wire.decode_payload`, so a remote result compares
*equal* to the in-process object for every query payload type.  That
property is what lets tests and examples swap a live server for the
in-process service without changing a line.

One keep-alive connection is reused per session (guarded by a lock, so
a session may be shared across threads); :meth:`ClientSession.subscribe`
opens a dedicated second connection for its NDJSON stream and yields
one frame dict per line.  Everything is stdlib (``http.client``).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple, Union
from urllib.parse import quote, urlencode, urlsplit

from repro.api.envelopes import ApiResponse, IngestRequest, QueryRequest
from repro.api.wire import decode_payload
from repro.errors import ConfigError, ReproError


def _connect(
    host: str, port: int, timeout: Optional[float]
) -> http.client.HTTPConnection:
    """An open connection with TCP_NODELAY set.

    http.client writes request headers and body as separate sends; with
    Nagle on, that write-write-read pattern stalls ~40ms per request on
    the peer's delayed ACK — a flat tax that would dwarf most queries.
    """
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    conn.connect()
    assert conn.sock is not None
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return conn


class ClientSession:
    """A client for one gateway base URL (e.g. ``http://127.0.0.1:8420``).

    Args:
        base_url: ``http://host:port`` of a running gateway.
        timeout: Socket timeout for plain requests (subscribe streams
            take their own, since an idle stream legitimately blocks
            between heartbeats).
    """

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ConfigError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._host = parts.hostname
        self._port = parts.port or 80
        self._timeout = timeout
        self._lock = threading.Lock()
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One JSON round trip on the shared keep-alive connection.

        A request whose *send* fails on a reused connection is retried
        once on a fresh socket (the server closed an idle keep-alive
        connection).  A lost *response* is only retried for GETs — the
        server may already have processed the request, and re-sending a
        POST could double-ingest.
        """
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        with self._lock:
            while True:
                fresh = self._conn is None
                if self._conn is None:
                    self._conn = _connect(
                        self._host, self._port, self._timeout
                    )
                try:
                    self._conn.request(method, path, body=body, headers=headers)
                except (http.client.HTTPException, OSError):
                    # Send failed: the server cannot have processed a
                    # complete request, so a retry on a fresh socket is
                    # safe for any method (this covers the server
                    # having closed an idle keep-alive connection).
                    self._conn.close()
                    self._conn = None
                    if fresh:
                        raise
                    continue
                try:
                    response = self._conn.getresponse()
                    status = response.status
                    raw = response.read()
                except (http.client.HTTPException, OSError):
                    # The request reached the server but the response
                    # did not come back.  Only idempotent methods may
                    # retry — re-sending a POST here could double-ingest
                    # a document the server already processed.
                    self._conn.close()
                    self._conn = None
                    if fresh or method != "GET":
                        raise
                    continue
                break
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"gateway returned a non-JSON body for {method} {path}: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ReproError(
                f"gateway returned a non-object body for {method} {path}"
            )
        return status, data

    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One raw JSON round trip — ``(status, body)``.

        Public for callers that speak endpoints beyond the standard
        surface (the cluster's remote-shard client uses it for the
        ``/v1/shard/*`` introspection routes).
        """
        return self._request(method, path, payload)

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest]) -> ApiResponse:
        """``POST /v1/query``; returns the decoded envelope (check
        ``.ok`` / ``.error`` — failures do not raise)."""
        if isinstance(request, str):
            request = QueryRequest(text=request)
        _status, data = self._request("POST", "/v1/query", request.to_dict())
        return ApiResponse.from_dict(data)

    def query_decoded(self, request: Union[str, QueryRequest]) -> Tuple[str, Any]:
        """Query and decode the payload back into its payload object.

        Returns ``(kind, payload)`` where ``payload`` compares equal to
        what in-process ``NousService.query`` + ``decode_payload`` would
        produce.

        Raises:
            ReproError: when the envelope carries an error.
        """
        envelope = self.query(request).raise_for_error()
        assert envelope.payload is not None
        return envelope.kind, decode_payload(envelope.kind, envelope.payload)

    def ingest(
        self,
        request: Union[str, IngestRequest],
        wait: bool = True,
        **fields: Any,
    ) -> ApiResponse:
        """``POST /v1/ingest``.

        Args:
            request: An :class:`IngestRequest`, or the document text
                (with ``doc_id`` / ``date`` / ``source`` as keyword
                arguments).
            wait: Block until the document's micro-batch drains and
                return the ``ingest`` envelope; with ``wait=False`` the
                202 ``ticket`` envelope is returned immediately (poll it
                with :meth:`ticket`).
        """
        if isinstance(request, str):
            request = IngestRequest(text=request, **fields)
        elif fields:
            raise ConfigError(
                "keyword fields are only valid with a text-string request"
            )
        path = "/v1/ingest?wait=1" if wait else "/v1/ingest"
        _status, data = self._request("POST", path, request.to_dict())
        return ApiResponse.from_dict(data)

    def submit(
        self, request: Union[str, IngestRequest], **fields: Any
    ) -> ApiResponse:
        """Fire-and-poll ingestion: the 202 ``ticket`` envelope."""
        return self.ingest(request, wait=False, **fields)

    def ticket(self, ticket_id: int) -> ApiResponse:
        """``GET /v1/ingest/<id>``: the ``ingest`` envelope once the
        document drained, the ``ticket`` envelope while pending."""
        _status, data = self._request("GET", f"/v1/ingest/{ticket_id}")
        return ApiResponse.from_dict(data)

    def statistics(self) -> ApiResponse:
        """``GET /v1/stats``: the ``statistics`` envelope."""
        _status, data = self._request("GET", "/v1/stats")
        return ApiResponse.from_dict(data)

    def healthz(self) -> Dict[str, Any]:
        """``GET /v1/healthz``: liveness + queue state (a plain dict)."""
        _status, data = self._request("GET", "/v1/healthz")
        return data

    def subscribe(
        self,
        query_text: str,
        heartbeat: Optional[float] = None,
        max_seconds: Optional[float] = None,
        max_updates: Optional[int] = None,
        include_heartbeats: bool = False,
        timeout: Optional[float] = None,
        snapshot: bool = False,
        trending_full_view: bool = False,
    ) -> "SubscriptionStream":
        """``GET /v1/subscribe?q=...``: a live NDJSON delta stream.

        Returns a :class:`SubscriptionStream` — iterate it for frame
        dicts (``subscribed`` first, then ``update`` / ``bye``;
        ``heartbeat`` frames are filtered unless requested).  Closing
        the stream disconnects, which detaches the server-side standing
        query.

        Args:
            snapshot: Ask the hello frame to carry the baseline rows
                and their version (``?snapshot=1``) — what a consumer
                folding deltas into an authoritative row map needs.
            trending_full_view: Register the server-side trending
                subscription over the miner's full support table
                (``?full=1``; see
                :meth:`repro.api.service.NousService.subscribe`).

        Raises:
            ReproError: when the server rejects the subscription (e.g.
                an unparseable query).
        """
        params: Dict[str, str] = {"q": query_text}
        if heartbeat is not None:
            params["heartbeat"] = str(heartbeat)
        if max_seconds is not None:
            params["max_seconds"] = str(max_seconds)
        if max_updates is not None:
            params["max_updates"] = str(max_updates)
        if snapshot:
            params["snapshot"] = "1"
        if trending_full_view:
            params["full"] = "1"
        path = "/v1/subscribe?" + urlencode(params, quote_via=quote)
        return SubscriptionStream(
            self._host, self._port, path, timeout, include_heartbeats
        )


class SubscriptionStream:
    """Iterator over one subscribe stream's NDJSON frames.

    Owns a dedicated connection: closing it (or leaving a ``with``
    block) is the client-side disconnect the server detaches on.
    """

    def __init__(
        self,
        host: str,
        port: int,
        path: str,
        timeout: Optional[float],
        include_heartbeats: bool,
    ) -> None:
        self._include_heartbeats = include_heartbeats
        self._conn = _connect(host, port, timeout)
        self._closed = False
        try:
            self._conn.request("GET", path)
            self._response = self._conn.getresponse()
            if self._response.status != 200:
                data = json.loads(self._response.read())
                ApiResponse.from_dict(data).raise_for_error()
                raise ReproError(
                    f"subscribe rejected with HTTP {self._response.status}"
                )
        except BaseException:
            self._conn.close()
            self._closed = True
            raise

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self

    def __next__(self) -> Dict[str, Any]:
        """The next frame; ``StopIteration`` on clean end of stream."""
        while True:
            if self._closed:
                raise StopIteration
            try:
                line = self._response.readline()
            except (OSError, ValueError, AttributeError, http.client.HTTPException):
                # close() may race a blocked readline from another
                # thread; whatever the stdlib raises on the yanked
                # socket, the stream is simply over (the AttributeError
                # is http.client reading through its now-None buffer).
                self.close()
                raise StopIteration from None
            if not line:
                self.close()
                raise StopIteration
            frame = json.loads(line)
            if not isinstance(frame, dict):
                raise ReproError("subscribe stream emitted a non-object frame")
            if (
                frame.get("event") == "heartbeat"
                and not self._include_heartbeats
            ):
                continue
            return frame

    def close(self) -> None:
        """Disconnect (idempotent)."""
        if not self._closed:
            self._closed = True
            self._conn.close()

    def __enter__(self) -> "SubscriptionStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
