"""``ShardProcessManager``: spawn and supervise ``nous serve`` workers.

Process-shard mode runs every shard as its own interpreter — the first
configuration in this reproduction where construction genuinely escapes
the GIL, matching the paper's deployment of construction/querying
across distributed workers.  Each worker is a stock ``nous serve``
gateway over a monolithic :class:`~repro.api.service.NousService`; the
parent speaks the ordinary PR-2/PR-3 wire envelopes to it (see
:mod:`repro.api.cluster.remote`), so a worker is indistinguishable from
any other NOUS deployment.

Lifecycle contract:

- **Startup** is announce-then-health-check: the worker prints one JSON
  line (``{"event": "serving", "url": ..., "port": ..., "pid": ...}``)
  to stdout once its gateway is bound (``--announce``), and the manager
  then polls ``GET /v1/healthz`` until the worker answers ``ok``.
  A worker that dies first (e.g. a port collision), never announces, or
  never turns healthy within ``startup_timeout`` fails the whole
  cluster start with a structured
  :class:`~repro.errors.ClusterError` carrying the worker's stderr
  tail; already-started siblings are torn down.
- **Shutdown** is terminate-then-kill with a bounded wait, registered
  with :mod:`atexit` as well, so no ``nous serve`` worker outlives the
  parent even when callers forget :meth:`ShardProcessManager.stop`.
- **Crash detection** is :meth:`poll` / :attr:`ShardProcess.alive`; the
  remote client consults it to turn a connection error into a
  structured dead-shard report.

The worker KB is named by a **spec string** (:func:`resolve_kb_spec`)
rather than a callable, because a ``kb_factory`` closure cannot cross a
process boundary: ``"empty"``, ``"drone"``, or
``"world:<articles>:<seed>"`` (the deterministic demo world).  The
parent resolves the same spec locally for the router's reference copy,
so routing and the workers agree on the curated base.
"""

from __future__ import annotations

import atexit
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import asdict
from typing import IO, Any, Dict, List, Optional, Sequence

from repro.api.http.client import ClientSession
from repro.api.service import ServiceConfig
from repro.core.pipeline import NousConfig
from repro.errors import ClusterError, ConfigError
from repro.kb.drone_kb import build_drone_kb
from repro.kb.knowledge_base import KnowledgeBase

#: Specs a worker (and the router's reference copy) can build by name.
KB_SPECS = ("empty", "drone", "world:<articles>:<seed>")


def resolve_kb_spec(spec: str) -> KnowledgeBase:
    """Build the curated KB a spec string names.

    Deterministic for a fixed spec: the parent's reference copy and
    every worker's base are identical without shipping objects over the
    process boundary.
    """
    if spec == "empty":
        return KnowledgeBase()
    if spec == "drone":
        return build_drone_kb()
    if spec.startswith("world:"):
        from repro.data.corpus import CorpusConfig, generate_corpus
        from repro.data.descriptions import generate_descriptions

        parts = spec.split(":")
        if len(parts) != 3:
            raise ConfigError(
                f"world spec must be world:<articles>:<seed>, got {spec!r}"
            )
        try:
            n_articles, seed = int(parts[1]), int(parts[2])
        except ValueError:
            raise ConfigError(
                f"world spec must carry integers, got {spec!r}"
            ) from None
        kb = build_drone_kb()
        # The generator extends the KB with the synthetic world; the
        # articles themselves are discarded — they enter through the
        # router, not pre-loaded per shard.
        generate_corpus(kb, CorpusConfig(n_articles=n_articles, seed=seed))
        generate_descriptions(kb, seed=seed)
        return kb
    raise ConfigError(
        f"unknown kb spec {spec!r} (expected one of {', '.join(KB_SPECS)})"
    )


class ShardProcess:
    """One supervised ``nous serve`` worker."""

    def __init__(
        self,
        index: int,
        process: "subprocess.Popen[bytes]",
        stderr_file: IO[bytes],
    ) -> None:
        self.index = index
        self.process = process
        self.url = ""
        self.port = 0
        self._stderr_file = stderr_file

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    @property
    def returncode(self) -> Optional[int]:
        return self.process.poll()

    def stderr_tail(self, max_bytes: int = 4096) -> str:
        """The last ``max_bytes`` of the worker's stderr, for crash
        reports (best effort; the file may still be open for writing)."""
        try:
            self._stderr_file.flush()
            self._stderr_file.seek(0, os.SEEK_END)
            size = self._stderr_file.tell()
            self._stderr_file.seek(max(0, size - max_bytes))
            return self._stderr_file.read().decode("utf-8", errors="replace")
        except (OSError, ValueError):
            return ""

    def describe(self) -> str:
        state = (
            "alive"
            if self.alive
            else f"exited with code {self.returncode}"
        )
        return f"shard {self.index} (pid {self.pid}, {self.url or 'no url'}, {state})"

    def _close_files(self) -> None:
        for stream in (self.process.stdout, self._stderr_file):
            try:
                if stream is not None:
                    stream.close()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


class ShardProcessManager:
    """Spawn, health-check and reap one worker subprocess per shard.

    Args:
        num_shards: Workers to run.
        kb_spec: Curated-base spec every worker builds
            (:func:`resolve_kb_spec`).
        config: Pipeline settings, serialized to every worker.
        service_config: Queue policy, serialized to every worker
            (``auto_start`` is forced on — a live server must drain in
            the background).
        host: Interface the workers bind.
        ports: Explicit per-shard ports (default: ephemeral, the
            workers announce what the OS assigned).
        startup_timeout: Deadline for announce + first healthy probe,
            per worker.
        data_dir: Durability root.  When set, worker *i* runs with
            ``--data-dir <data_dir>/shard-<i>``: every accepted
            micro-batch is WAL-logged before acknowledgment, and a
            respawned worker replays snapshot + WAL from the same
            directory back to its exact pre-crash state.
    """

    def __init__(
        self,
        num_shards: int,
        kb_spec: str,
        config: Optional[NousConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        ports: Optional[Sequence[int]] = None,
        startup_timeout: float = 60.0,
        data_dir: Optional[str] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if ports is not None and len(ports) != num_shards:
            raise ConfigError(
                f"ports must name one port per shard "
                f"({len(ports)} for {num_shards} shards)"
            )
        resolve_kb_spec(kb_spec)  # fail fast on a bad spec
        self.num_shards = num_shards
        self.kb_spec = kb_spec
        self.config = config
        self.service_config = service_config
        self.host = host
        self.ports = list(ports) if ports is not None else [0] * num_shards
        self.startup_timeout = startup_timeout
        self.data_dir = data_dir
        self.workers: List[ShardProcess] = []
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardProcessManager":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> "ShardProcessManager":
        """Spawn every worker; returns once all are announced and
        healthy.  Any failure tears down the already-started workers
        and raises :class:`~repro.errors.ClusterError`."""
        if self.workers:
            raise ClusterError("shard processes already started")
        self._stopped = False
        atexit.register(self._atexit_stop)
        try:
            for index in range(self.num_shards):
                self.workers.append(self._spawn(index))
            for worker in self.workers:
                self._await_ready(worker)
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        """Terminate every worker (idempotent): SIGTERM, a bounded
        wait, then SIGKILL for stragglers — no orphaned ``nous serve``
        may outlive the manager."""
        if self._stopped:
            return
        self._stopped = True
        atexit.unregister(self._atexit_stop)
        for worker in self.workers:
            if worker.alive:
                worker.process.terminate()
        deadline = time.monotonic() + 10.0
        for worker in self.workers:
            remaining = max(deadline - time.monotonic(), 0.1)
            try:
                worker.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                worker.process.kill()
                try:
                    worker.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            worker._close_files()

    def _atexit_stop(self) -> None:  # pragma: no cover - interpreter exit
        self.stop()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def poll(self, index: int) -> Optional[int]:
        """The worker's exit code, or ``None`` while it runs."""
        return self.workers[index].returncode

    def dead_shards(self) -> List[int]:
        """Indices of workers that are no longer running."""
        return [w.index for w in self.workers if not w.alive]

    def respawn(self, index: int) -> ShardProcess:
        """Replace a dead worker with a fresh one on the same port.

        The new worker binds the old worker's announced port (so
        already-handed-out URLs stay valid) and — when the manager runs
        with a ``data_dir`` — recovers that shard's snapshot + WAL
        before its gateway accepts traffic, returning to the exact
        pre-crash state.  Raises :class:`~repro.errors.ClusterError`
        when the old worker is still alive, or when the replacement
        fails to come up (the replacement is reaped in that case and
        the dead worker stays in place).
        """
        old = self.workers[index]
        if old.alive:
            raise ClusterError(
                f"{old.describe()}: refusing to respawn a live worker"
            )
        if old.port:
            # Pin the replacement to the announced port even when the
            # original was ephemeral (ports[index] == 0).
            self.ports[index] = old.port
        replacement = self._spawn(index)
        try:
            self._await_ready(replacement)
        except BaseException:
            if replacement.alive:
                replacement.process.kill()
                try:
                    replacement.process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    pass
            replacement._close_files()
            raise
        old._close_files()
        self.workers[index] = replacement
        return replacement

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    def _worker_argv(self, index: int) -> List[str]:
        argv = [
            sys.executable,
            "-u",
            "-m",
            "repro.query.cli",
            "serve",
            "--host",
            self.host,
            "--port",
            str(self.ports[index]),
            "--kb",
            self.kb_spec,
            "--quiet",
            "--announce",
        ]
        if self.data_dir is not None:
            argv += [
                "--data-dir",
                os.path.join(self.data_dir, f"shard-{index}"),
            ]
        if self.config is not None:
            argv += ["--config-json", json.dumps(asdict(self.config))]
        service_overrides = self._service_overrides()
        if service_overrides:
            argv += ["--service-json", json.dumps(service_overrides)]
        return argv

    def _service_overrides(self) -> Dict[str, Any]:
        if self.service_config is None:
            return {}
        overrides = asdict(self.service_config)
        # A worker must always drain in the background: the parent's
        # auto_start=False (deterministic local mode) is an in-process
        # convention that cannot cross the wire — explicit flushes go
        # through POST /v1/shard/flush instead.
        overrides.pop("auto_start", None)
        return overrides

    @staticmethod
    def _worker_env() -> Dict[str, str]:
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        # Workers are deterministic by default: an unpinned (or
        # explicitly "random") worker would draw its own hash seed,
        # making every run's iteration orders unique.  A parent that
        # pins PYTHONHASHSEED to a number propagates its value (the CI
        # shards jobs and the golden driver pin 0); note a parent
        # running under hash *randomisation* still hashes differently
        # than its pinned workers — cross-interpreter byte-identity
        # needs both sides pinned.
        if env.get("PYTHONHASHSEED", "random") == "random":
            env["PYTHONHASHSEED"] = "0"
        return env

    def _spawn(self, index: int) -> ShardProcess:
        stderr_file = tempfile.TemporaryFile(prefix=f"nous-shard-{index}-")
        process = subprocess.Popen(
            self._worker_argv(index),
            stdout=subprocess.PIPE,
            stderr=stderr_file,
            env=self._worker_env(),
        )
        return ShardProcess(index, process, stderr_file)

    def _await_ready(self, worker: ShardProcess) -> None:
        deadline = time.monotonic() + self.startup_timeout
        announce = self._read_announce(worker, deadline)
        worker.url = str(announce["url"])
        worker.port = int(announce["port"])
        with ClientSession(worker.url, timeout=5.0) as probe:
            while True:
                if not worker.alive:
                    raise ClusterError(
                        f"{worker.describe()} died before turning healthy: "
                        f"{worker.stderr_tail()}"
                    )
                try:
                    if probe.healthz().get("ok"):
                        return
                except Exception:  # noqa: BLE001 - probe retries below
                    pass
                if time.monotonic() >= deadline:
                    raise ClusterError(
                        f"{worker.describe()} never answered /v1/healthz "
                        f"within {self.startup_timeout}s"
                    )
                time.sleep(0.05)

    def _read_announce(
        self, worker: ShardProcess, deadline: float
    ) -> Dict[str, Any]:
        """One JSON line from the worker's stdout, under a deadline.

        The blocking ``readline`` runs on a helper thread so a silent
        worker cannot hang cluster startup; on timeout or early exit
        the worker's stderr tail rides the error (this is where a port
        collision's ``Address already in use`` surfaces).
        """
        stdout = worker.process.stdout
        assert stdout is not None
        result: List[bytes] = []

        def _read() -> None:
            result.append(stdout.readline())

        reader = threading.Thread(target=_read, daemon=True)
        reader.start()
        reader.join(timeout=max(deadline - time.monotonic(), 0.0))
        line = result[0] if result else b""
        if reader.is_alive() or not line.strip():
            detail = worker.stderr_tail()
            raise ClusterError(
                f"{worker.describe()} did not announce within "
                f"{self.startup_timeout}s"
                + (f": {detail}" if detail else "")
            )
        try:
            announce = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ClusterError(
                f"{worker.describe()} announced garbage: {line!r} ({exc})"
            ) from exc
        if not isinstance(announce, dict) or "url" not in announce:
            raise ClusterError(
                f"{worker.describe()} announced an invalid payload: {announce!r}"
            )
        return announce
