"""The sharded service cluster: partition-parallel NOUS.

NOUS runs its graph distributed across Spark/GraphX executors; this
package is the reproduction's service-level counterpart.  A
:class:`ShardedNousService` hash-partitions incoming documents by their
dominant entity (:class:`DocumentRouter`, over the same deterministic
:class:`~repro.graph.partition.HashPartitioner` the property graph
uses) across N independent :class:`~repro.api.service.NousService`
shards, ingests in parallel (one micro-batch drainer per shard), and
answers queries through a scatter-gather router with per-query-class
merge semantics:

=================  ===================================================
query class        merge
=================  ===================================================
entity             union + dedupe facts (highest confidence wins)
entity-trend       union + dedupe rows, newest first
pattern            union + dedupe binding rows
relationship /     top-k re-rank by coherence, dedupe by node sequence
explanatory
trending           per-shard window merge: full support tables summed,
                   frequency/closedness recomputed on the merged table
statistics         summation (replicated curated base counted once)
=================  ===================================================

The facade presents the monolith's exact envelopes and standing-query
surface, so it drops in behind the HTTP gateway (``nous serve
--shards N``).  Freshness is a **composite version stamp** — the tuple
of shard KG versions (scalar form: the sum) — which the router's
merged-result cache keys on.  Full contract: ``docs/SHARDING.md``.
"""

from repro.api.cluster.process import (
    ShardProcess,
    ShardProcessManager,
    resolve_kb_spec,
)
from repro.api.cluster.remote import (
    RemoteIngestTicket,
    RemoteShardClient,
    RemoteSubscription,
)
from repro.api.cluster.router import DocumentRouter
from repro.api.cluster.service import (
    ClusterSubscription,
    ShardedNousService,
    kind_of_query,
)

__all__ = [
    "DocumentRouter",
    "ShardedNousService",
    "ClusterSubscription",
    "ShardProcess",
    "ShardProcessManager",
    "RemoteIngestTicket",
    "RemoteShardClient",
    "RemoteSubscription",
    "kind_of_query",
    "resolve_kb_spec",
]
