"""``ShardedNousService``: N independent services behind one facade.

The sharded service is the in-process model of the paper's distributed
deployment: documents are hash-partitioned by dominant entity across N
independent :class:`~repro.api.service.NousService` shards (each with
its own pipeline, ingestion queue and drainer thread — ingestion
proceeds in parallel), and queries are answered by a scatter-gather
router that merges the partial answers with per-query-class semantics
(see :mod:`repro.query.engine`'s ``merge_*`` functions and
``docs/SHARDING.md``).

The facade speaks exactly the monolith's contract — the same
``IngestRequest`` / ``QueryRequest`` envelopes in, the same
``ApiResponse`` out, the same standing-query surface — so it drops in
behind :class:`~repro.api.http.NousGateway` (``nous serve --shards N``)
with no adapter changes.  Freshness is carried by a **composite version
stamp**: the tuple of shard KG versions (exposed as
:attr:`ShardedNousService.shard_versions`), folded into the scalar
``kg_version`` envelope field as its sum.  Each component is monotonic,
so the sum is monotonic and moves whenever any shard changes — exactly
the invariant the PR-1 query-result cache contract requires, and the
router's own merged-result cache keys on the full tuple.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.api.base import ShardLike, SubscriptionLike
from repro.api.envelopes import (
    ApiResponse,
    IngestRequest,
    QueryRequest,
)
from repro.api.cluster.process import ShardProcessManager, resolve_kb_spec
from repro.api.cluster.remote import RemoteShardClient
from repro.api.cluster.router import DocumentRouter
from repro.api.service import (
    IngestTicket,
    NousService,
    ServiceConfig,
    StandingQueryUpdate,
)
from repro.api.wire import encode_payload, key_of_row, kind_of_query
from repro.compute.coordinator import ComputeCoordinator, ComputeStats
from repro.compute.mining import DistributedMiner, MiningOutcome
from repro.compute.pathsearch import DistributedPathSearch
from repro.core.pipeline import NousConfig
from repro.core.statistics import GraphStatistics, compute_statistics
from repro.errors import (
    ClusterError,
    ConfigError,
    QAError,
    QueryError,
    ReproError,
    VertexNotFoundError,
)
from repro.graph.partition import PartitionStats
from repro.kb.drone_kb import build_drone_kb
from repro.kb.knowledge_base import KnowledgeBase
from repro.mining.patterns import Pattern
from repro.mining.support import closed_patterns
from repro.qa.pathsearch import RankedPath
from repro.query.engine import (
    assemble_window_report,
    centrality_payload,
    components_payload,
    merge_entity_summaries,
    merge_pattern_matches,
    merge_ranked_paths,
    merge_statistics,
    merge_trend_rows,
    pagerank_payload,
    render_centrality,
    render_components,
    render_pagerank,
    render_pattern_matches,
    render_ranked_paths,
    render_trend_rows,
    render_window_report,
)
from repro.query.model import (
    CentralityQuery,
    EntityTrendQuery,
    PageRankQuery,
    Query,
    TrendingQuery,
)
from repro.query.parser import parse_query

_PATH_KINDS = ("relationship", "explanatory")
_ANALYTICS_KINDS = ("pagerank", "components", "centrality")


# kind_of_query is re-exported above (imported from repro.api.wire):
# the kind dispatch lives with the wire codecs so non-cluster consumers
# — the gateway's delta-coalescing streams — can key rows without
# importing the cluster package.


class _ClusterTicket(IngestTicket):
    """A shard ticket re-stamped with the cluster's composite version.

    The wrapped shard fulfils the underlying ticket with its *local* KG
    version; cluster callers reason about freshness in composite stamps,
    so the envelope is re-stamped at read time (the composite stamp only
    moves forward, so the value read is always >= the state that
    included this document).
    """

    def __init__(
        self, inner: IngestTicket, cluster: "ShardedNousService", shard: int
    ) -> None:
        super().__init__(inner.doc_id)
        self._inner = inner
        self._cluster = cluster
        self.shard = shard

    def done(self) -> bool:
        return self._inner.done()

    def result(self, timeout: Optional[float] = None) -> ApiResponse:
        response = self._inner.result(timeout=timeout)
        if response.kg_version < 0:
            return response
        return replace(response, kg_version=self._cluster.kg_version)


class ClusterSubscription:
    """A standing query fanned out to every shard.

    One shard subscription per shard acts as the *wake signal*; on every
    shard delta the per-shard row maps are re-read from the shard
    subscriptions' authoritative current rows (never rebuilt from the
    delta itself — shard callbacks run outside the shard's engine lock,
    so two concurrent refreshes could deliver their deltas out of
    order; re-reading the latest evaluation is idempotent and converges
    regardless of delivery order).  The merged row map is then
    recomputed (union / support-sum / top-k depending on the query
    class) and diffed against the last notified state, producing
    cluster-level added/removed deltas stamped with the composite
    version.  The interface matches the monolith's
    :class:`~repro.api.service.Subscription` so gateway subscribe
    streams work unchanged.
    """

    def __init__(
        self,
        cluster: "ShardedNousService",
        sub_id: int,
        query: Query,
        callback: Optional[Callable[[StandingQueryUpdate], None]] = None,
        trending_full_view: bool = False,
    ) -> None:
        self.id = sub_id
        self.query = query
        self.kind = kind_of_query(query)
        self.active = True
        self.trending_full_view = trending_full_view
        self.last_error: Optional[BaseException] = None
        self._cluster = cluster
        self._callback = callback
        self._lock = threading.Lock()
        self._last_version = -1
        self._shard_subs: List[Optional[SubscriptionLike]] = [
            None for _ in range(cluster.num_shards)
        ]
        self._shard_rows: List[Dict[str, Dict[str, Any]]] = [
            {} for _ in range(cluster.num_shards)
        ]
        self._merged: Dict[str, Dict[str, Any]] = {}
        self._updates: Deque[StandingQueryUpdate] = deque()
        # While True (during subscribe()'s fan-out) shard deltas update
        # the per-shard maps but emit nothing: they fold into the
        # baseline, which is fixed when the fan-out completes.
        self._baselining = True

    @property
    def query_text(self) -> str:
        return self.query.text

    @property
    def current_rows(self) -> List[Dict[str, Any]]:
        """The merged rows of the most recent evaluation."""
        with self._lock:
            return [dict(r) for r in self._merged.values()]

    @property
    def last_kg_version(self) -> int:
        """Composite stamp of the last notified merged state (the
        baseline stamp until the first cluster-level delta)."""
        with self._lock:
            return self._last_version

    def poll(self) -> List[StandingQueryUpdate]:
        """Drain and return pending merged deltas, oldest first."""
        updates: List[StandingQueryUpdate] = []
        with self._lock:
            while self._updates:
                updates.append(self._updates.popleft())
        return updates

    # ------------------------------------------------------------------
    def _attach(self, shard: int, subscription: SubscriptionLike) -> None:
        """Adopt a shard subscription's baseline rows."""
        with self._lock:
            self._shard_subs[shard] = subscription
            self._shard_rows[shard] = {
                key_of_row(self.kind, row): row
                for row in subscription.current_rows
            }

    def _finish_baseline(self) -> None:
        with self._lock:
            self._merged = self._merge_rows()
            self._baselining = False
            self._last_version = self._cluster.kg_version_hint

    def _on_shard_update(self, shard: int, update: StandingQueryUpdate) -> None:
        """React to one shard delta: re-read that shard's authoritative
        rows and emit the merged delta, if any."""
        emitted: Optional[StandingQueryUpdate] = None
        with self._lock:
            shard_sub = self._shard_subs[shard]
            if shard_sub is not None:
                self._shard_rows[shard] = {
                    key_of_row(self.kind, row): row
                    for row in shard_sub.current_rows
                }
            else:
                # Mid-fan-out (before _attach): fold the delta into the
                # provisional map; _attach overwrites it with the
                # subscription's current rows anyway.
                rows = self._shard_rows[shard]
                for row in update.removed:
                    rows.pop(key_of_row(self.kind, row), None)
                for row in update.added:
                    rows[key_of_row(self.kind, row)] = dict(row)
            if not self._baselining:
                emitted = self._diff_and_record()
        if emitted is not None:
            self._cluster._record_update(emitted)
            if self._callback is not None:
                try:
                    self._callback(emitted)
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    self.last_error = exc
                    self._cluster.cluster_subscription_errors += 1

    def _diff_and_record(self) -> Optional[StandingQueryUpdate]:
        merged = self._merge_rows()
        added = [
            row for key, row in merged.items() if self._merged.get(key) != row
        ]
        removed = [
            row for key, row in self._merged.items() if key not in merged
        ]
        self._merged = merged
        if not added and not removed:
            return None
        version = max(self._cluster.kg_version_hint, self._last_version)
        self._last_version = version
        update = StandingQueryUpdate(
            subscription_id=self.id,
            query_text=self.query.text,
            kg_version=version,
            added=tuple(added),
            removed=tuple(removed),
        )
        self._updates.append(update)
        return update

    def _merge_rows(self) -> Dict[str, Dict[str, Any]]:
        """Merge the per-shard row maps with the class's semantics.

        Trending rows are recomputed from the cluster's distributed
        embedding enumeration — merging only the per-shard
        closed-frequent rows would miss patterns that are sub-threshold
        everywhere but frequent in the union, would never recompute
        closedness, and would never see embeddings that span a shard
        boundary; this keeps standing trending answers identical to the
        interactive merged query.  Path rows keep the best (lowest-divergence) copy per
        route and apply the same top-k as the interactive merge; entity
        rows dedupe by fact identity keeping the highest confidence;
        every other class is a union of identical rows.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        if self.kind == "trending":
            # Serial coordinator on purpose: this can run on a
            # scatter-pool thread (refresh_subscriptions), where
            # submitting more work to the same bounded pool could
            # deadlock.
            outcome = self._cluster.distributed_supports(serial=True)
            supports: Dict[Pattern, int] = outcome.supports
            min_support = outcome.min_support
            if self.trending_full_view:
                rows_view = sorted(supports.items(), key=lambda kv: kv[1])
            else:
                rows_view = list(closed_patterns(supports, min_support))
            for pattern, support in rows_view:
                merged[pattern.describe()] = {
                    "pattern": pattern.describe(),
                    "support": support,
                }
        elif self.kind == "entity":
            best: Dict[Tuple[Any, ...], Dict[str, Any]] = {}
            for rows in self._shard_rows:
                for row in rows.values():
                    identity = (
                        row["subject"],
                        row["predicate"],
                        row["object"],
                        row["curated"],
                    )
                    kept = best.get(identity)
                    if kept is None or row["confidence"] > kept["confidence"]:
                        best[identity] = dict(row)
            for row in best.values():
                merged[key_of_row(self.kind, row)] = row
        elif self.kind in _PATH_KINDS:
            # Coherence is a divergence: lower is better, both for the
            # winning duplicate and for the top-k cut.
            for rows in self._shard_rows:
                for key, row in rows.items():
                    kept = merged.get(key)
                    if kept is None or row["coherence"] < kept["coherence"]:
                        merged[key] = dict(row)
            top = sorted(
                merged.items(),
                key=lambda kv: (float(kv[1]["coherence"]), len(kv[1]["nodes"])),
            )[: self._cluster.path_k]
            merged = dict(top)
        else:
            for rows in self._shard_rows:
                for key, row in rows.items():
                    merged.setdefault(key, dict(row))
        return merged


class ShardedNousService:
    """Hash-partitioned cluster of NOUS shards, one facade.

    Shards come in two flavours behind the same
    :class:`~repro.api.base.ShardLike` surface — the router, merges,
    composite stamps, caching and standing-query fan-out are identical
    for both:

    - ``shard_mode="local"`` (default): N in-process
      :class:`~repro.api.service.NousService` instances, one drainer
      thread each.
    - ``shard_mode="process"``: N ``nous serve`` worker subprocesses
      (spawned and supervised by
      :class:`~repro.api.cluster.process.ShardProcessManager`), spoken
      to over the ordinary wire envelopes by
      :class:`~repro.api.cluster.remote.RemoteShardClient` — real
      parallelism across interpreters, not just drainer threads.

    Args:
        kb_factory: Zero-argument callable producing a *fresh* curated
            KB.  Called once per shard plus once for the router's
            read-only reference copy — shards mutate their KBs
            independently, so they cannot share one instance.  Local
            mode only (a closure cannot cross a process boundary).
        num_shards: Number of shards (>= 1).
        config: Pipeline settings, applied to every shard.
        service_config: Queue/cache policy, applied to every shard; its
            cache settings also size the router's merged-result cache.
        path_k: Top-k for the path-search merge (the monolith's answer
            size).
        shard_mode: ``"local"`` or ``"process"``.
        kb_spec: Named curated-base spec
            (:func:`~repro.api.cluster.process.resolve_kb_spec`) —
            required in process mode (workers rebuild it themselves),
            accepted in local mode as a ``kb_factory`` shorthand.
        router_kb: A pre-built, *pristine* copy of what ``kb_spec``
            resolves to, used as the router's read-only reference —
            lets a caller that already built the world (the demo CLI)
            skip one redundant resolution.  The caller guarantees
            equivalence with the spec and never mutates it.
        worker_ports: Explicit worker ports (process mode; default
            ephemeral).
        worker_startup_timeout: Per-worker announce+health deadline
            (process mode).
        data_dir: Durability root.  When set, shard *i* persists into
            ``<data_dir>/shard-<i>`` (snapshot + fsynced WAL) and cold
            starts recover from it.  In process mode it also arms the
            supervisor: a crashed worker is respawned on its old port
            and replays back to the exact pre-crash composite stamp
            instead of freezing the cluster (the default, data-less
            behaviour remains freeze-and-report).
        max_restarts: Per-shard respawn budget (process mode, with
            ``data_dir``); once exhausted, dead-shard errors surface
            again.
        restart_backoff: Base delay before a respawn, doubled per prior
            restart of the same shard.
        executor: Scatter thread pool to *borrow* instead of owning one
            sized ``num_shards``.  The tenant registry passes a single
            shared pool here so N tenants' clusters draw from one
            process-wide budget; borrowed pools survive ``close()``.
    """

    def __init__(
        self,
        kb_factory: Optional[Callable[[], KnowledgeBase]] = None,
        num_shards: int = 2,
        config: Optional[NousConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        path_k: int = 3,
        shard_mode: str = "local",
        kb_spec: Optional[str] = None,
        router_kb: Optional[KnowledgeBase] = None,
        worker_ports: Optional[Sequence[int]] = None,
        worker_startup_timeout: float = 60.0,
        data_dir: Optional[str] = None,
        max_restarts: int = 3,
        restart_backoff: float = 0.1,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if shard_mode not in ("local", "process"):
            raise ConfigError(
                f"shard_mode must be 'local' or 'process', got {shard_mode!r}"
            )
        if max_restarts < 0:
            raise ConfigError(
                f"max_restarts must be >= 0, got {max_restarts}"
            )
        if restart_backoff < 0:
            raise ConfigError(
                f"restart_backoff must be >= 0, got {restart_backoff}"
            )
        self.path_k = path_k
        self.shard_mode = shard_mode
        self.kb_spec = kb_spec
        self.data_dir = data_dir
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.shard_restarts: List[int] = [0] * num_shards
        self._recover_lock = threading.Lock()
        self.service_config = service_config or ServiceConfig()
        self.service_config.validate()
        self._manager: Optional[ShardProcessManager] = None
        self.shards: List[ShardLike]
        if shard_mode == "process":
            if kb_factory is not None:
                raise ConfigError(
                    "process shards take kb_spec, not kb_factory (a "
                    "closure cannot cross the process boundary)"
                )
            if kb_spec is None:
                raise ConfigError("process shards require a kb_spec")
            self._reference_kb = (
                router_kb if router_kb is not None else resolve_kb_spec(kb_spec)
            )
            self._manager = ShardProcessManager(
                num_shards,
                kb_spec,
                config=config,
                service_config=service_config,
                ports=worker_ports,
                startup_timeout=worker_startup_timeout,
                data_dir=data_dir,
            )
            self._manager.start()
            self.shards = [
                RemoteShardClient(worker) for worker in self._manager.workers
            ]
        else:
            factory: Callable[[], KnowledgeBase]
            if kb_factory is not None:
                factory = kb_factory
            elif kb_spec is not None:
                spec = kb_spec
                factory = lambda: resolve_kb_spec(spec)  # noqa: E731
            else:
                factory = build_drone_kb
            self._reference_kb = factory()
            self.shards = [
                NousService(
                    kb=factory(),
                    config=config,
                    service_config=self.service_config,
                    data_dir=(
                        None
                        if data_dir is None
                        else os.path.join(data_dir, f"shard-{index}")
                    ),
                )
                for index in range(num_shards)
            ]
        self.router = DocumentRouter(self._reference_kb, num_shards)
        # A caller may inject a shared scatter pool (the tenant registry
        # does: every tenant's cluster draws from one process-wide
        # thread budget instead of num_shards threads each).  Injected
        # pools are borrowed — close() leaves them running.
        self._owns_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=num_shards, thread_name_prefix="nous-scatter"
        )
        self._closed = False
        self._route_lock = threading.Lock()
        self.documents_routed: List[int] = [0] * num_shards
        # Merged-result cache keyed on (query, composite version tuple).
        self._cache_enabled = (
            self.service_config.enable_cache and self.service_config.cache_size > 0
        )
        self._cache_lock = threading.Lock()
        self._cache: "OrderedDict[Query, Tuple[Tuple[int, ...], ApiResponse]]"
        self._cache = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        # Router-level trending transition state (the shards' miner
        # transition state is never consumed by cluster queries).
        self._trending_lock = threading.Lock()
        self._previous_frequent: Set[Pattern] = set()
        self._subs_lock = threading.Lock()
        self._subscriptions: Dict[int, ClusterSubscription] = {}
        self._next_subscription_id = 1
        self._collectors: List[List[StandingQueryUpdate]] = []
        self.cluster_subscription_errors = 0
        self._curated_stats: Optional[GraphStatistics] = None
        # Distributed compute: counters shared by every coordinator this
        # cluster creates, plus one lazily-built path search (it carries
        # the LDA topics cache, keyed on the composite version stamp).
        self._nous_config = config or NousConfig()
        self._compute_stats = ComputeStats()
        self._compute_lock = threading.Lock()
        self._path_search: Optional[DistributedPathSearch] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedNousService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drain and stop every shard (terminating worker subprocesses
        in process mode), then the scatter pool."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            try:
                shard.close()
            except Exception:  # noqa: BLE001 - a dead shard must not
                pass           # block the rest of the teardown
        if self._manager is not None:
            self._manager.stop()
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def dead_shards(self) -> List[int]:
        """Indices of shards that are no longer alive (a crashed worker
        in process mode; always empty for local shards)."""
        return [
            index for index, shard in enumerate(self.shards) if not shard.alive
        ]

    # ------------------------------------------------------------------
    # durability / recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[int, ...]:
        """Write a full snapshot on every shard (scatter); returns the
        per-shard KG versions at snapshot time.  Requires ``data_dir``
        — shards without storage raise ``StorageError``."""
        self._maybe_recover()
        versions: List[int] = []
        for result, error in self._gather(lambda shard: shard.snapshot()):
            if error is not None:
                raise error
            versions.append(int(result))
        return tuple(versions)

    def _maybe_recover(self) -> None:
        """Entry gate on every operation path: with durability armed,
        respawn dead workers before touching the shard set.  Without a
        ``data_dir`` this is a no-op, preserving the freeze-and-report
        contract (dead shards surface as structured ClusterErrors)."""
        if self.data_dir is None or self._manager is None:
            return
        if self.dead_shards():
            self.recover_dead_shards()

    def recover_dead_shards(self) -> List[int]:
        """Respawn every dead worker and replay it back to its exact
        pre-crash state (snapshot + WAL from its shard data directory).

        Per dead shard: back off (doubling with each prior restart of
        that shard), respawn on the old port, rebind the remote client,
        and re-register every cluster standing query on the recovered
        worker.  Returns the indices recovered.  Raises
        :class:`~repro.errors.ClusterError` once a shard's
        ``max_restarts`` budget is exhausted — the cluster then degrades
        to the ordinary dead-shard reporting.
        """
        if self._manager is None:
            return []
        with self._recover_lock:
            recovered: List[int] = []
            for index in self.dead_shards():
                used = self.shard_restarts[index]
                if used >= self.max_restarts:
                    raise ClusterError(
                        f"shard {index} exhausted its restart budget "
                        f"({self.max_restarts}); staying down"
                    )
                if self.restart_backoff > 0:
                    time.sleep(self.restart_backoff * (2 ** used))
                worker = self._manager.respawn(index)
                self.shard_restarts[index] = used + 1
                shard = self.shards[index]
                assert isinstance(shard, RemoteShardClient)
                shard.rebind(worker)
                self._resubscribe_shard(index)
                recovered.append(index)
            return recovered

    def _resubscribe_shard(self, index: int) -> None:
        """Re-register every cluster standing query on a recovered
        worker (its subscription registry died with the old process),
        then re-diff: the replayed worker's rows normally match the
        pre-crash mirror exactly, so this emits nothing — but any
        divergence surfaces as an ordinary merged delta instead of
        silently stale rows."""
        with self._subs_lock:
            subscriptions = list(self._subscriptions.values())
        shard = self.shards[index]
        for subscription in subscriptions:
            shard_sub = shard.subscribe(
                subscription.query_text,
                callback=(
                    lambda update, _index=index, _sub=subscription: (
                        _sub._on_shard_update(_index, update)
                    )
                ),
                trending_full_view=(subscription.kind == "trending"),
            )
            subscription._attach(index, shard_sub)
            subscription._on_shard_update(
                index,
                StandingQueryUpdate(
                    subscription_id=subscription.id,
                    query_text=subscription.query_text,
                    kg_version=self.kg_version_hint,
                    added=(),
                    removed=(),
                ),
            )

    def restart_shard(self, index: int, timeout: float = 10.0) -> None:
        """Fault-injection hook: SIGKILL one worker mid-flight, then
        run the ordinary recovery path.  Process mode only."""
        if self._manager is None:
            raise ClusterError("restart_shard requires process shards")
        worker = self._manager.workers[index]
        if worker.alive:
            worker.process.kill()
            worker.process.wait(timeout=timeout)
        self.recover_dead_shards()

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    @property
    def shard_versions(self) -> Tuple[int, ...]:
        """The composite version stamp: one monotonic KG version per
        shard.  Two stamps are comparable component-wise; any observable
        cluster change moves at least one component forward."""
        return tuple(shard.kg_version for shard in self.shards)

    @property
    def kg_version(self) -> int:
        """Scalar form of the composite stamp (the component sum).

        Monotonic because every component is monotonic, and it moves
        whenever any component moves — sufficient for the freshness and
        cache-invalidation contract envelopes carry.
        """
        return sum(self.shard_versions)

    @property
    def kg_version_hint(self) -> int:
        """Cheap scalar stamp for per-delta stamping: sums each shard's
        last *observed* version instead of performing a fresh read per
        shard (in process mode a fresh read is one HTTP round trip per
        shard — too expensive inside a subscription's merge lock).
        Monotonic for the same reason as :attr:`kg_version`; may lag it
        briefly, which the per-subscription stamp floor absorbs."""
        return sum(shard.kg_version_hint for shard in self.shards)

    # ------------------------------------------------------------------
    # scatter plumbing
    # ------------------------------------------------------------------
    def _gather(
        self, call: Callable[[ShardLike], Any]
    ) -> List[Tuple[Any, Optional[BaseException]]]:
        """Run ``call`` against every shard concurrently; returns one
        ``(result, error)`` pair per shard, in shard order."""
        futures = [
            self._executor.submit(call, shard) for shard in self.shards
        ]
        out: List[Tuple[Any, Optional[BaseException]]] = []
        for future in futures:
            try:
                out.append((future.result(), None))
            except Exception as exc:  # noqa: BLE001 - per-shard boundary
                out.append((None, exc))
        return out

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def submit(self, request: Union[IngestRequest, Any]) -> IngestTicket:
        """Route one document to its shard's queue; returns a ticket."""
        self._maybe_recover()
        if not isinstance(request, IngestRequest):
            request = IngestRequest.from_article(request)
        shard_index, _entity = self.router.shard_for_document(
            request.text, request.doc_id
        )
        ticket = self.shards[shard_index].submit(request)
        with self._route_lock:
            self.documents_routed[shard_index] += 1
        return _ClusterTicket(ticket, self, shard_index)

    def submit_many(
        self, requests: Sequence[Union[IngestRequest, Any]]
    ) -> List[IngestTicket]:
        """Route a batch: per-shard sub-batches are enqueued atomically
        (maximal micro-batches per shard), tickets return in input
        order."""
        self._maybe_recover()
        normalized = [
            request
            if isinstance(request, IngestRequest)
            else IngestRequest.from_article(request)
            for request in requests
        ]
        per_shard: Dict[int, List[Tuple[int, IngestRequest]]] = {}
        for position, request in enumerate(normalized):
            shard_index, _entity = self.router.shard_for_document(
                request.text, request.doc_id
            )
            per_shard.setdefault(shard_index, []).append((position, request))
        tickets: List[Optional[IngestTicket]] = [None] * len(normalized)
        for shard_index, members in per_shard.items():
            shard_tickets = self.shards[shard_index].submit_many(
                [request for _position, request in members]
            )
            with self._route_lock:
                self.documents_routed[shard_index] += len(members)
            for (position, _request), ticket in zip(members, shard_tickets):
                tickets[position] = _ClusterTicket(ticket, self, shard_index)
        return [ticket for ticket in tickets if ticket is not None]

    def ingest(
        self,
        request: Union[IngestRequest, Any],
        timeout: Optional[float] = 60.0,
    ) -> ApiResponse:
        """Submit one document and block until its shard ingested it."""
        ticket = self.submit(request)
        if not self.draining_in_background:
            self.flush()
        return ticket.result(timeout=timeout)

    def ingest_facts(
        self,
        facts: Sequence[Tuple[str, str, str]],
        date: Optional[str] = None,
        source: str = "structured",
        confidence: float = 0.9,
    ) -> ApiResponse:
        """Ingest structured facts, each routed to its subject's home
        shard; shards ingest their slices in parallel."""
        self._maybe_recover()
        start = time.perf_counter()
        per_shard: Dict[int, List[Tuple[str, str, str]]] = {}
        for fact in facts:
            per_shard.setdefault(
                self.router.shard_for_entity(fact[0]), []
            ).append(fact)
        futures = [
            self._executor.submit(
                self.shards[shard_index].ingest_facts,
                slice_,
                date,
                source,
                confidence,
            )
            for shard_index, slice_ in per_shard.items()
        ]
        accepted = 0
        for future in futures:
            try:
                response = future.result()
            except Exception as exc:  # noqa: BLE001 - envelope boundary
                # A shard failing as a unit (dead worker) surfaces the
                # same way a shard-level failure envelope does.
                return ApiResponse.failure(exc, kind="ingest")
            if not response.ok:
                return response
            assert response.payload is not None
            accepted += int(response.payload["accepted"])
        return ApiResponse(
            ok=True,
            kind="ingest",
            payload={"accepted": accepted, "doc_id": "", "structured": True},
            rendered=f"accepted {accepted} structured fact(s)",
            elapsed_ms=(time.perf_counter() - start) * 1000.0,
            kg_version=self.kg_version,
        )

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every shard's queue is drained."""
        self._maybe_recover()
        for shard in self.shards:
            shard.flush(timeout=timeout)

    @property
    def pending_count(self) -> int:
        return sum(shard.pending_count for shard in self.shards)

    @property
    def draining_in_background(self) -> bool:
        return self.shards[0].draining_in_background

    @property
    def batches_drained(self) -> int:
        return sum(shard.batches_drained for shard in self.shards)

    @property
    def documents_drained(self) -> int:
        return sum(shard.documents_drained for shard in self.shards)

    @property
    def documents_ingested(self) -> int:
        return sum(shard.documents_ingested for shard in self.shards)

    @property
    def subscription_errors(self) -> int:
        return (
            sum(shard.subscription_errors for shard in self.shards)
            + self.cluster_subscription_errors
        )

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest]) -> ApiResponse:
        """Scatter one query to every shard and merge the answers."""
        self._maybe_recover()
        start = time.perf_counter()
        text = request.text if isinstance(request, QueryRequest) else request
        try:
            query = parse_query(text)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            return ApiResponse.failure(exc)
        if isinstance(query, TrendingQuery):
            # Never cached (transition deltas are consumed on read).
            try:
                payload, rendered, version = self._merged_trending()
            except Exception as exc:  # noqa: BLE001 - envelope boundary
                return ApiResponse.failure(exc)
            return ApiResponse(
                ok=True,
                kind="trending",
                payload=payload,
                rendered=rendered,
                elapsed_ms=(time.perf_counter() - start) * 1000.0,
                kg_version=version,
            )
        pre_versions = self.shard_versions
        hit = self._cache_get(query, pre_versions)
        if hit is not None:
            return replace(
                hit,
                cached=True,
                elapsed_ms=(time.perf_counter() - start) * 1000.0,
            )
        try:
            kind, payload, rendered = self._scatter_query(query)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            return ApiResponse.failure(exc)
        post_versions = self.shard_versions
        envelope = ApiResponse(
            ok=True,
            kind=kind,
            payload=payload,
            rendered=rendered,
            elapsed_ms=(time.perf_counter() - start) * 1000.0,
            kg_version=sum(post_versions),
        )
        # Queries may themselves move shard versions (linking can mint an
        # entity for an unknown mention), and concurrent ingestion may
        # land mid-scatter; cache only results whose composite stamp was
        # stable across the scatter, so a stale merge is never stored
        # under a fresh stamp.
        if pre_versions == post_versions:
            self._cache_put(query, post_versions, envelope)
        return envelope

    def _scatter_query(
        self, query: Query
    ) -> Tuple[str, Dict[str, Any], str]:
        """Execute one non-trending query on every shard and merge."""
        kind = kind_of_query(query)
        if kind in _ANALYTICS_KINDS:
            # No per-shard merge can reproduce a global fixpoint (a
            # shard's local pagerank is not a partial answer), so the
            # analytics classes bypass the scatter and run as
            # distributed superstep jobs over the merged graph.
            return self._analytics_query(query, kind)
        gathered = self._gather(lambda shard: shard.execute_query(query))
        results = [result for result, error in gathered if error is None]
        errors = [error for _result, error in gathered if error is not None]
        if kind in _PATH_KINDS:
            # Partial tolerance: path search legitimately fails on a
            # shard whose graph lacks a vertex; merge the successes.
            if not results:
                assert errors
                raise errors[0]
            path_lists = [r.payload for r in results]
            note = self._relaxation_note(results)
            if self.num_shards > 1:
                # Augment with the coherent cross-shard search: routes
                # whose edges live on different shards are invisible to
                # every per-shard search, so the distributed frontier
                # expansion is the only way they reach the merge.
                distributed, constrained = self._distributed_paths(query)
                if distributed:
                    path_lists = path_lists + [distributed]
                    if constrained:
                        # A cross-shard via-path exists after all; the
                        # all-shards-relaxed note would now be wrong.
                        note = None
            merged_paths = merge_ranked_paths(path_lists, k=self.path_k)
            return (
                kind,
                encode_payload(kind, merged_paths),
                render_ranked_paths(merged_paths, note=note),
            )
        if errors:
            raise errors[0]
        if kind == "entity":
            summary = merge_entity_summaries([r.payload for r in results])
            return kind, encode_payload(kind, summary), summary.render()
        if kind == "entity-trend":
            rows = merge_trend_rows([r.payload for r in results])
            assert isinstance(query, EntityTrendQuery)
            return (
                kind,
                encode_payload(kind, rows),
                render_trend_rows(query.entity, rows),
            )
        assert kind == "pattern"
        matches = merge_pattern_matches([r.payload for r in results])
        return (
            kind,
            encode_payload(kind, matches),
            render_pattern_matches(matches),
        )

    # ------------------------------------------------------------------
    # distributed compute
    # ------------------------------------------------------------------
    def compute_coordinator(
        self,
        on_round: Optional[Callable[[int], None]] = None,
        serial: bool = False,
    ) -> ComputeCoordinator:
        """A superstep coordinator over this cluster's shards.

        Coordinators share the cluster's scatter pool and compute
        counters.  With durability armed (``data_dir`` + process
        shards) the coordinator self-heals a dead worker and re-runs
        the failed round — steps are stateless, so the retry is exact;
        otherwise a mid-superstep death surfaces as the structured
        :class:`ClusterError` instead of hanging the job.

        ``serial=True`` drops the shared scatter pool so rounds run
        sequentially on the calling thread — required on code paths
        that may themselves run on a scatter-pool thread (subscription
        refresh), where submitting more work to the same bounded pool
        could deadlock.
        """
        recover: Optional[Callable[[], None]] = None
        if self.data_dir is not None and self._manager is not None:
            recover = self._compute_recover
        return ComputeCoordinator(
            self.shards,
            executor=None if serial else self._executor,
            recover=recover,
            on_round=on_round,
            stats=self._compute_stats,
        )

    def distributed_supports(
        self,
        on_round: Optional[Callable[[int], None]] = None,
        serial: bool = False,
    ) -> MiningOutcome:
        """Exact union-window pattern supports via the distributed
        embedding enumeration (one ``mine_embeddings`` compute job)."""
        return DistributedMiner(
            self.compute_coordinator(on_round=on_round, serial=serial)
        ).mine()

    def _compute_recover(self) -> None:
        """Self-heal hook handed to coordinators (durable mode only)."""
        self.recover_dead_shards()

    def _distributed_path_search(self) -> DistributedPathSearch:
        """The cluster's coherent cross-shard path search (lazy; reused
        so its topic fit is cached across queries on the composite
        version stamp).  Search settings mirror the shards' own
        :class:`NousConfig`, which is what makes its coherence scores
        comparable with — and mergeable into — the per-shard answers."""
        with self._compute_lock:
            if self._path_search is None:
                config = self._nous_config
                self._path_search = DistributedPathSearch(
                    self.compute_coordinator(),
                    n_topics=config.n_topics,
                    lda_iterations=config.lda_iterations,
                    seed=config.seed,
                    max_hops=config.max_hops,
                    beam_width=config.beam_width,
                )
            return self._path_search

    def _distributed_paths(
        self, query: Query
    ) -> Tuple[List[RankedPath], bool]:
        """Cross-shard routes for one path query, or ``[]`` on failure.

        Returns ``(paths, constrained)`` — ``constrained`` is True when
        the paths satisfy the query's ``via`` predicate.  Failures
        degrade to the per-shard merge (the same partial tolerance the
        scatter applies): a dead shard without self-heal, an endpoint
        absent from the merged graph, or a degenerate source==target
        resolution must not take down an answerable query.
        """
        relationship = getattr(query, "relationship", None)
        try:
            search = self._distributed_path_search()
            source = search.resolve(getattr(query, "source"))
            target = search.resolve(getattr(query, "target"))
            if source == target:
                return [], False
            paths = search.top_k_paths(
                source, target, k=self.path_k, relationship=relationship
            )
            if paths:
                return paths, relationship is not None
            if relationship is not None:
                # Mirror the engine's relaxation: the predicate is a
                # preference, not a hard gate.
                return (
                    search.top_k_paths(source, target, k=self.path_k),
                    False,
                )
            return [], False
        except (ClusterError, VertexNotFoundError, QAError):
            return [], False

    def _analytics_query(
        self, query: Query, kind: str
    ) -> Tuple[str, Dict[str, Any], str]:
        """Run one analytics query class as a distributed compute job."""
        coordinator = self.compute_coordinator()
        if kind == "pagerank":
            assert isinstance(query, PageRankQuery)
            ranks = coordinator.pagerank()
            payload = pagerank_payload(ranks, top=query.top)
            return kind, encode_payload(kind, payload), render_pagerank(payload)
        if kind == "components":
            labels = coordinator.components()
            payload = components_payload(labels)
            return (
                kind,
                encode_payload(kind, payload),
                render_components(payload),
            )
        assert isinstance(query, CentralityQuery)
        if query.metric != "degree":
            raise QueryError(
                f"unsupported centrality metric {query.metric!r}"
            )
        scores = {
            vertex: float(degree)
            for vertex, degree in coordinator.degree_centrality().items()
        }
        payload = centrality_payload(scores, metric=query.metric, top=query.top)
        return kind, encode_payload(kind, payload), render_centrality(payload)

    @staticmethod
    def _relaxation_note(results: Sequence[Any]) -> Optional[str]:
        """Reproduce the engine's relaxed-predicate note iff *every*
        shard relaxed (if any shard found a via-path, the merged answer
        contains it and the note would be wrong)."""
        first_lines = [r.rendered.splitlines()[0] for r in results if r.rendered]
        if first_lines and all(
            line.startswith("(no path via") for line in first_lines
        ):
            return first_lines[0]
        return None

    def _merged_trending(self) -> Tuple[Dict[str, Any], str, int]:
        """Distributed-enumeration window merge: run one
        ``mine_embeddings`` compute job for the exact union supports
        (embeddings spanning shard boundaries included), then recompute
        frequency/closedness and the router-level transition events."""
        with self._trending_lock:
            outcome = self.distributed_supports()
            report, frequent_now = assemble_window_report(
                outcome.supports,
                min_support=outcome.min_support,
                previous_frequent=self._previous_frequent,
                window_edges=outcome.window_edges,
                timestamp=outcome.last_timestamp,
            )
            self._previous_frequent = frequent_now
            version = sum(outcome.kg_versions)
        return (
            encode_payload("trending", report),
            render_window_report(report),
            version,
        )

    def statistics(self) -> ApiResponse:
        """Summation-merged quality statistics, plus cluster placement
        info (shard loads, edge cut) under the ``cluster`` payload key."""
        self._maybe_recover()
        start = time.perf_counter()
        try:
            gathered = self._gather(lambda shard: shard.graph_statistics())
            shard_stats: List[GraphStatistics] = []
            for stats, error in gathered:
                if error is not None:
                    raise error
                shard_stats.append(stats)
            merged = merge_statistics(shard_stats, self._curated_statistics())
            payload = encode_payload("statistics", merged)
            payload["cluster"] = self.cluster_info()
            rendered = merged.render()
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            return ApiResponse.failure(exc, kind="statistics")
        return ApiResponse(
            ok=True,
            kind="statistics",
            payload=payload,
            rendered=rendered,
            elapsed_ms=(time.perf_counter() - start) * 1000.0,
            kg_version=self.kg_version,
        )

    def _curated_statistics(self) -> GraphStatistics:
        """Statistics of the pristine reference KB (computed once; the
        reference is never mutated)."""
        if self._curated_stats is None:
            self._curated_stats = compute_statistics(
                self._reference_kb, top_central=0
            )
        return self._curated_stats

    # ------------------------------------------------------------------
    # placement accounting
    # ------------------------------------------------------------------
    def partition_stats(self) -> PartitionStats:
        """GraphX-style placement quality of the *extracted* graph.

        Entities are homed by the router's hash partitioner; an
        extracted fact is a cut edge when its endpoints' home shards
        differ (the communication-cost proxy for a cross-shard join).
        Edges are counted where they were ingested, vertices at their
        home shard.
        """
        n = self.num_shards
        vertex_home: Dict[str, int] = {}
        edge_counts = [0] * n
        cut = 0
        for shard_index, shard in enumerate(self.shards):
            if not shard.alive:
                # A crashed worker has no placement to report; the
                # survivors' accounting stays available (its index is
                # called out by ``dead_shards`` in ``cluster_info``).
                continue
            for subject, _predicate, object_ in shard.extracted_fact_keys():
                edge_counts[shard_index] += 1
                src_home = vertex_home.setdefault(
                    subject, self.router.shard_for_entity(subject)
                )
                dst_home = vertex_home.setdefault(
                    object_, self.router.shard_for_entity(object_)
                )
                if src_home != dst_home:
                    cut += 1
        vertex_counts = [0] * n
        for home in vertex_home.values():
            vertex_counts[home] += 1
        return PartitionStats(
            vertex_counts=vertex_counts, edge_counts=edge_counts, cut_edges=cut
        )

    def cluster_info(self) -> Dict[str, Any]:
        """Cluster block of the ``/v1/stats`` payload."""
        with self._route_lock:
            routed = list(self.documents_routed)
        ingested: List[Optional[int]] = []
        for shard in self.shards:
            try:
                ingested.append(shard.documents_ingested)
            except Exception:  # noqa: BLE001 - dead shard: report None
                ingested.append(None)
        info = {
            "shards": self.num_shards,
            "shard_mode": self.shard_mode,
            "shard_versions": list(self.shard_versions),
            "documents_routed": routed,
            "documents_ingested": ingested,
            "dead_shards": self.dead_shards(),
            "shard_restarts": list(self.shard_restarts),
            "partition": self.partition_stats().to_dict(),
            "compute": self._compute_stats.to_dict(),
        }
        if self._manager is not None:
            info["workers"] = [
                {"pid": worker.pid, "url": worker.url, "alive": worker.alive}
                for worker in self._manager.workers
            ]
        return info

    # ------------------------------------------------------------------
    # merged-result cache
    # ------------------------------------------------------------------
    def _cache_get(
        self, query: Query, versions: Tuple[int, ...]
    ) -> Optional[ApiResponse]:
        if not self._cache_enabled:
            return None
        with self._cache_lock:
            entry = self._cache.get(query)
            if entry is None or entry[0] != versions:
                return None
            self._cache.move_to_end(query)
            self.cache_hits += 1
            hit = entry[1]
            # Hand out an independent payload dict: envelope payloads are
            # JSON-safe by construction, and a caller mutating its copy
            # must not poison the cache.
            payload = None
            if hit.payload is not None:
                payload = _copy_jsonlike(hit.payload)
            return replace(hit, payload=payload)

    def _cache_put(
        self,
        query: Query,
        versions: Tuple[int, ...],
        envelope: ApiResponse,
    ) -> None:
        if not self._cache_enabled:
            return
        with self._cache_lock:
            self.cache_misses += 1
            stored = envelope
            if envelope.payload is not None:
                stored = replace(
                    envelope, payload=_copy_jsonlike(envelope.payload)
                )
            self._cache[query] = (versions, stored)
            self._cache.move_to_end(query)
            while len(self._cache) > self.service_config.cache_size:
                self._cache.popitem(last=False)

    @property
    def cache_len(self) -> int:
        with self._cache_lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query_text: str,
        callback: Optional[Callable[[StandingQueryUpdate], None]] = None,
        trending_full_view: bool = False,
    ) -> ClusterSubscription:
        """Register a continuous query on every shard.

        The merged result set at registration time is the baseline —
        shard deltas arriving mid-fan-out fold into it rather than
        producing spurious first notifications.

        Args:
            trending_full_view: Expose merged trending rows over the
                summed *full* support table instead of its
                closed-frequent slice (the monolith's
                ``trending_full_view`` contract, cluster edition).
                Shard-side subscriptions always use the full view for
                trending regardless — that is the wake-signal the
                merge needs.
        """
        query = parse_query(query_text)
        with self._subs_lock:
            subscription = ClusterSubscription(
                self,
                self._next_subscription_id,
                query,
                callback,
                trending_full_view=trending_full_view,
            )
            self._next_subscription_id += 1
        attached: List[Tuple[ShardLike, SubscriptionLike]] = []
        try:
            for shard_index, shard in enumerate(self.shards):
                shard_sub = shard.subscribe(
                    query_text,
                    callback=(
                        lambda update, index=shard_index: (
                            subscription._on_shard_update(index, update)
                        )
                    ),
                    # Full-support shard rows for trending: the merged
                    # closed set can change on sub-threshold support
                    # movement a shard's closed view never surfaces, so
                    # the shard-side change signal must cover the full
                    # table (merged rows are recomputed in _merge_rows).
                    trending_full_view=(subscription.kind == "trending"),
                )
                attached.append((shard, shard_sub))
                subscription._attach(shard_index, shard_sub)
        except Exception:
            for shard, shard_sub in attached:
                shard.unsubscribe(shard_sub)
            raise
        subscription._finish_baseline()
        with self._subs_lock:
            self._subscriptions[subscription.id] = subscription
        return subscription

    def unsubscribe(self, subscription: ClusterSubscription) -> None:
        """Deregister on every shard (idempotent)."""
        with self._subs_lock:
            self._subscriptions.pop(subscription.id, None)
        for shard, shard_sub in zip(self.shards, subscription._shard_subs):
            if shard_sub is not None:
                shard.unsubscribe(shard_sub)
        subscription.active = False

    @property
    def subscription_count(self) -> int:
        return len(self._subscriptions)

    def refresh_subscriptions(self) -> List[StandingQueryUpdate]:
        """Scatter a refresh to every shard; returns the merged cluster
        deltas emitted while the refresh ran."""
        collector: List[StandingQueryUpdate] = []
        with self._subs_lock:
            self._collectors.append(collector)
        try:
            for _result, error in self._gather(
                lambda shard: shard.refresh_subscriptions()
            ):
                if error is not None:
                    raise error
        finally:
            with self._subs_lock:
                self._collectors.remove(collector)
        return collector

    def _record_update(self, update: StandingQueryUpdate) -> None:
        with self._subs_lock:
            for collector in self._collectors:
                collector.append(update)


def _copy_jsonlike(value: Any) -> Any:
    """Deep-copy a JSON-safe structure (dicts/lists/scalars)."""
    if isinstance(value, dict):
        return {key: _copy_jsonlike(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_copy_jsonlike(item) for item in value]
    return value
