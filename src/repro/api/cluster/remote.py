"""``RemoteShardClient``: one cluster shard, spoken to over the wire.

The scatter-gather router consumes shards through the
:class:`~repro.api.base.ShardLike` surface; this module implements that
surface against a ``nous serve`` worker subprocess using nothing but
the public HTTP contract — the PR-2 envelopes on ``/v1/ingest`` /
``/v1/query`` / ``/v1/stats``, the PR-3 NDJSON subscribe stream, and
the ``/v1/shard/*`` introspection routes.  Because both sides of every
call round-trip the :mod:`repro.api.wire` codecs, a remote shard's
answers compare *equal* to an in-process shard's, which is what lets
``ShardedNousService`` compose local and remote shards interchangeably
(``--shard-mode process``) without touching the merge layer.

Failure semantics: a transport-level error is promoted to a structured
:class:`~repro.errors.ClusterError` that names the shard, its pid and
its fate (``exited with code N`` when the supervisor says the worker
died — the crash-mid-ingest case — or ``stopped answering`` when the
process is alive but unreachable).  Ordinary service errors a *healthy*
worker returns inside an envelope are re-raised as the exception class
the worker recorded (:func:`repro.api.envelopes.exception_from_error`),
so the router's error handling — and the error envelopes the parent
ultimately emits — are byte-identical to local-shard mode.

Standing queries ride one NDJSON stream per subscription
(``?snapshot=1`` hello carries the baseline rows): a reader thread
folds added/removed frames into an authoritative row map, which is
exactly the "re-read the shard's current rows" wake-signal contract
:class:`~repro.api.cluster.service.ClusterSubscription` needs — the
stream is a single ordered channel, so folding deltas in arrival order
reproduces the worker's row state.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.cluster.process import ShardProcess
from repro.api.envelopes import (
    ApiResponse,
    IngestRequest,
    QueryRequest,
    exception_from_error,
)
from repro.api.http.client import ClientSession, SubscriptionStream
from repro.api.service import (
    IngestTicket,
    StandingQueryUpdate,
    StreamView,
)
from repro.api.wire import decode_payload, key_of_row, pattern_from_wire
from repro.core.statistics import GraphStatistics
from repro.errors import ClusterError, ReproError
from repro.mining.patterns import Pattern
from repro.query.engine import QueryResult
from repro.query.model import Query
from repro.query.parser import parse_query

#: Keepalive interval requested on shard subscribe streams; far below
#: the worker gateway's ``idle_timeout`` so a quiet stream is never
#: mistaken for a dead one (pinned by ``GatewayConfig.validate``).
SHARD_STREAM_HEARTBEAT = 2.0


class RemoteIngestTicket(IngestTicket):
    """A ticket whose fulfilment lives in the worker's registry.

    ``done()``/``result()`` poll ``GET /v1/ingest/<id>``: the worker
    answers the ``ticket`` envelope while the document is queued and
    the fulfilled ``ingest`` envelope once its micro-batch drained.
    """

    def __init__(
        self, client: "RemoteShardClient", ticket_id: int, doc_id: str
    ) -> None:
        super().__init__(doc_id)
        self.ticket_id = ticket_id
        self._client = client
        self._fulfilled: Optional[ApiResponse] = None

    def _poll_once(self) -> Optional[ApiResponse]:
        if self._fulfilled is not None:
            return self._fulfilled
        envelope = self._client._ticket_envelope(self.ticket_id)
        if envelope.kind != "ticket":
            self._fulfilled = envelope
            return envelope
        return None

    def done(self) -> bool:
        return self._poll_once() is not None

    def result(self, timeout: Optional[float] = None) -> ApiResponse:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            envelope = self._poll_once()
            if envelope is not None:
                return envelope
            if deadline is not None and time.monotonic() >= deadline:
                raise ReproError(
                    f"ingest ticket for {self.doc_id!r} not fulfilled "
                    f"within {timeout}s"
                )
            time.sleep(0.02)


class RemoteSubscription:
    """A standing query registered on a worker, mirrored locally.

    The hello frame's snapshot is the baseline; every ``update`` frame
    is folded into the row map *before* the callback fires, so a
    consumer that re-reads :attr:`current_rows` on wake always sees a
    state at least as new as the delta that woke it.  Updates arriving
    twice (an explicit ``/v1/shard/refresh`` response racing the
    stream) are deduplicated by their version stamp.
    """

    def __init__(
        self,
        query: Query,
        kind: str,
        stream: SubscriptionStream,
        callback: Optional[Callable[[StandingQueryUpdate], None]] = None,
    ) -> None:
        self.query = query
        self.kind = kind
        self.active = True
        self.last_error: Optional[BaseException] = None
        self._stream = stream
        self._callback = callback
        self._lock = threading.Lock()
        hello = next(stream)
        if hello.get("event") != "subscribed" or "rows" not in hello:
            stream.close()
            raise ClusterError(
                f"subscribe stream did not open with a snapshot hello: {hello}"
            )
        self.id = int(hello["subscription_id"])
        self._rows: Dict[str, Dict[str, Any]] = {
            key_of_row(kind, row): dict(row) for row in hello["rows"]
        }
        self._last_version = int(hello["baseline_version"])
        self._updates: List[StandingQueryUpdate] = []
        self._reader = threading.Thread(
            target=self._read_loop, name="nous-shard-stream", daemon=True
        )
        self._reader.start()

    @property
    def query_text(self) -> str:
        return self.query.text

    @property
    def current_rows(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [dict(r) for r in self._rows.values()]

    @property
    def last_kg_version(self) -> int:
        with self._lock:
            return self._last_version

    def poll(self) -> List[StandingQueryUpdate]:
        with self._lock:
            updates, self._updates = self._updates, []
        return updates

    def close(self) -> None:
        """Disconnect the stream; the worker detaches the standing
        query at its next write."""
        self.active = False
        self._stream.close()

    # ------------------------------------------------------------------
    def _read_loop(self) -> None:
        try:
            for frame in self._stream:
                event = frame.get("event")
                if event == "update":
                    self._deliver(
                        StandingQueryUpdate(
                            subscription_id=self.id,
                            query_text=str(frame.get("query_text", "")),
                            kg_version=int(frame["kg_version"]),
                            added=tuple(
                                dict(row) for row in frame.get("added", [])
                            ),
                            removed=tuple(
                                dict(row) for row in frame.get("removed", [])
                            ),
                        ),
                        authoritative=True,
                    )
                elif event == "bye":
                    break
        except Exception as exc:  # noqa: BLE001 - isolation boundary
            self.last_error = exc
        finally:
            self.active = False

    def _deliver(
        self, update: StandingQueryUpdate, authoritative: bool = False
    ) -> bool:
        """Fold one delta into the row map; returns True when applied.

        Stream frames are ``authoritative``: the NDJSON stream is a
        single ordered, complete channel, so every frame folds
        unconditionally (the gateway's per-stream stamp clamp can give
        two consecutive frames the *same* stamp — a version guard here
        would silently drop the second one's rows).  The guard applies
        only to refresh-response-injected updates, which race the
        stream copies of themselves: a stale refresh copy must never
        fold on top of newer stream state.  Either way the last folder
        wins and the stream eventually delivers everything, so the row
        map converges to the worker's.
        """
        with self._lock:
            if not authoritative and update.kg_version <= self._last_version:
                return False
            for row in update.removed:
                self._rows.pop(key_of_row(self.kind, row), None)
            for row in update.added:
                self._rows[key_of_row(self.kind, row)] = dict(row)
            self._last_version = max(self._last_version, update.kg_version)
            self._updates.append(update)
        if self._callback is not None:
            try:
                self._callback(update)
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                self.last_error = exc
        return True


class RemoteShardClient:
    """The :class:`~repro.api.base.ShardLike` surface over one worker.

    Args:
        worker: The supervised subprocess handle (url, pid, liveness).
        timeout: Socket timeout for plain requests; generous because a
            shard-level ``flush`` legitimately blocks on a long drain.
    """

    def __init__(self, worker: ShardProcess, timeout: float = 120.0) -> None:
        self.worker = worker
        self.url = worker.url
        self._timeout = timeout
        self._session = ClientSession(worker.url, timeout=timeout)
        self._subs_lock = threading.Lock()
        self._subs: Dict[int, RemoteSubscription] = {}
        self._last_health: Optional[Dict[str, Any]] = None
        self._closed = False

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _call(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            return self._session.request(method, path, payload)
        except ReproError:
            raise
        except Exception as exc:  # noqa: BLE001 - transport boundary
            raise self._shard_down(exc) from exc

    def _shard_down(self, cause: BaseException) -> ClusterError:
        """A transport failure, promoted to a structured dead-shard
        report when the supervisor says the worker is gone."""
        if not self.worker.alive:
            return ClusterError(
                f"{self.worker.describe()}: worker process died "
                f"mid-call ({type(cause).__name__}: {cause})"
            )
        return ClusterError(
            f"{self.worker.describe()}: worker stopped answering "
            f"({type(cause).__name__}: {cause})"
        )

    def _checked(self, status: int, data: Dict[str, Any]) -> Dict[str, Any]:
        """Raise the reconstructed exception for failure envelopes;
        return the body otherwise."""
        if data.get("ok") is False and data.get("error") is not None:
            raise exception_from_error(
                ApiResponse.from_dict(data).error  # type: ignore[arg-type]
            )
        return data

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.worker.alive

    def _health(self) -> Dict[str, Any]:
        """The worker's ``/v1/healthz`` payload.

        Degrades rather than raises once the worker is gone: the last
        successful reading is served stale, so advisory consumers —
        composite version stamps, gateway heartbeats, ``cluster_info``
        — keep working (and stay monotonic: a dead component simply
        freezes) while the *operation* paths surface the structured
        dead-shard error.
        """
        try:
            _status, data = self._call("GET", "/v1/healthz")
        except ClusterError:
            if self._last_health is None:
                raise
            return self._last_health
        self._last_health = data
        return data

    @property
    def kg_version(self) -> int:
        return int(self._health()["kg_version"])

    @property
    def kg_version_hint(self) -> int:
        """The last *observed* version, without a wire round trip.

        Good enough for advisory stamps on standing-query deltas (the
        cache-stability check and health endpoints keep using live
        reads); monotonic because each cached health payload is newer
        than the one it replaces.  Falls back to a live read before any
        health traffic has primed the cache.
        """
        cached = self._last_health
        if cached is not None:
            return int(cached["kg_version"])
        return self.kg_version

    @property
    def documents_ingested(self) -> int:
        return int(self._health()["documents_ingested"])

    @property
    def pending_count(self) -> int:
        return int(self._health()["pending"])

    @property
    def batches_drained(self) -> int:
        return int(self._health()["batches_drained"])

    @property
    def documents_drained(self) -> int:
        return int(self._health()["documents_drained"])

    @property
    def subscription_errors(self) -> int:
        return int(self._health()["subscription_errors"])

    @property
    def draining_in_background(self) -> bool:
        """A worker always drains in the background (its gateway forces
        ``auto_start=True``); explicit flushes go over the wire."""
        return True

    @property
    def subscription_count(self) -> int:
        with self._subs_lock:
            return len(self._subs)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def submit(self, request: Union[IngestRequest, Any]) -> IngestTicket:
        if not isinstance(request, IngestRequest):
            request = IngestRequest.from_article(request)
        _status, data = self._call("POST", "/v1/ingest", request.to_dict())
        envelope = ApiResponse.from_dict(self._checked(_status, data))
        assert envelope.payload is not None
        return RemoteIngestTicket(
            self, int(envelope.payload["ticket_id"]), request.doc_id
        )

    def submit_many(
        self, requests: Sequence[Union[IngestRequest, Any]]
    ) -> List[IngestTicket]:
        normalized = [
            request
            if isinstance(request, IngestRequest)
            else IngestRequest.from_article(request)
            for request in requests
        ]
        _status, data = self._call(
            "POST",
            "/v1/shard/submit",
            {"documents": [request.to_dict() for request in normalized]},
        )
        body = self._checked(_status, data)
        return [
            RemoteIngestTicket(
                self, int(ticket["ticket_id"]), str(ticket["doc_id"])
            )
            for ticket in body["tickets"]
        ]

    def ingest_facts(
        self,
        facts: Sequence[Tuple[str, str, str]],
        date: Optional[str] = None,
        source: str = "structured",
        confidence: float = 0.9,
    ) -> ApiResponse:
        _status, data = self._call(
            "POST",
            "/v1/shard/ingest_facts",
            {
                "facts": [list(fact) for fact in facts],
                "date": date,
                "source": source,
                "confidence": confidence,
            },
        )
        return ApiResponse.from_dict(data)

    def flush(self, timeout: Optional[float] = None) -> None:
        _status, data = self._call(
            "POST", "/v1/shard/flush", {"timeout": timeout}
        )
        self._checked(_status, data)

    def _ticket_envelope(self, ticket_id: int) -> ApiResponse:
        _status, data = self._call("GET", f"/v1/ingest/{ticket_id}")
        return ApiResponse.from_dict(self._checked(_status, data))

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest]) -> ApiResponse:
        if isinstance(request, str):
            request = QueryRequest(text=request)
        _status, data = self._call("POST", "/v1/query", request.to_dict())
        return ApiResponse.from_dict(data)

    def execute_query(self, query: Query) -> QueryResult:
        """The scatter hook: run the query on the worker and decode the
        payload back into its *object* form, which compares equal to an
        in-process shard's — the property the merges rely on."""
        envelope = self.query(QueryRequest(text=query.text))
        if envelope.error is not None:
            raise exception_from_error(envelope.error)
        assert envelope.payload is not None
        return QueryResult(
            query=query,
            kind=envelope.kind,
            payload=decode_payload(envelope.kind, envelope.payload),
            rendered=envelope.rendered,
            elapsed_ms=envelope.elapsed_ms,
            cached=envelope.cached,
            kg_version=envelope.kg_version,
        )

    def statistics(self) -> ApiResponse:
        _status, data = self._call("GET", "/v1/stats")
        return ApiResponse.from_dict(data)

    def graph_statistics(self) -> GraphStatistics:
        envelope = self.statistics()
        if envelope.error is not None:
            raise exception_from_error(envelope.error)
        assert envelope.payload is not None
        stats = decode_payload("statistics", envelope.payload)
        assert isinstance(stats, GraphStatistics)
        return stats

    def stream_view(self) -> StreamView:
        _status, data = self._call("GET", "/v1/shard/stream_view")
        body = self._checked(_status, data)
        supports: Dict[Pattern, int] = {
            pattern_from_wire(wire): int(support)
            for wire, support in body["supports"]
        }
        return StreamView(
            supports=supports,
            min_support=int(body["min_support"]),
            window_edges=int(body["window_edges"]),
            last_timestamp=float(body["last_timestamp"]),
            kg_version=int(body["kg_version"]),
        )

    def extracted_fact_keys(self) -> List[Tuple[str, str, str]]:
        _status, data = self._call("GET", "/v1/shard/extracted_facts")
        body = self._checked(_status, data)
        return [(str(s), str(p), str(o)) for s, p, o in body["facts"]]

    # ------------------------------------------------------------------
    # distributed compute
    # ------------------------------------------------------------------
    def compute_step(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Run one stateless compute superstep on the worker.

        The request/response are the :mod:`repro.compute.protocol` wire
        envelopes; a dead or unreachable worker surfaces the same
        structured :class:`ClusterError` as every other shard call, so
        the coordinator's recover-and-retry loop can treat local and
        remote shards identically.
        """
        _status, data = self._call("POST", "/v1/shard/compute", request)
        body = self._checked(_status, data)
        result = body["result"]
        assert isinstance(result, dict)
        return result

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Ask the worker to write a full snapshot; returns its KG
        version at snapshot time.  Raises the worker's ``StorageError``
        when it runs without a data directory."""
        _status, data = self._call("POST", "/v1/shard/snapshot", {})
        body = self._checked(_status, data)
        return int(body["kg_version"])

    def rebind(self, worker: ShardProcess) -> None:
        """Point this client at a respawned worker process.

        Drops every local subscription mirror (their streams died with
        the old process — the cluster layer re-subscribes through the
        ordinary ``subscribe`` path) and opens a fresh session against
        the replacement's URL.  The stale health cache is cleared so
        the next stamp read observes the recovered worker, not the
        corpse.
        """
        with self._subs_lock:
            subscriptions = list(self._subs.values())
            self._subs.clear()
        for subscription in subscriptions:
            subscription.close()
        self._session.close()
        self.worker = worker
        self.url = worker.url
        self._session = ClientSession(worker.url, timeout=self._timeout)
        self._last_health = None

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query_text: str,
        callback: Optional[Callable[[StandingQueryUpdate], None]] = None,
        trending_full_view: bool = False,
    ) -> RemoteSubscription:
        query = parse_query(query_text)
        from repro.api.cluster.service import kind_of_query

        try:
            stream = self._session.subscribe(
                query_text,
                heartbeat=SHARD_STREAM_HEARTBEAT,
                snapshot=True,
                trending_full_view=trending_full_view,
                timeout=None,
            )
        except ReproError:
            raise
        except Exception as exc:  # noqa: BLE001 - transport boundary
            raise self._shard_down(exc) from exc
        subscription = RemoteSubscription(
            query, kind_of_query(query), stream, callback
        )
        with self._subs_lock:
            self._subs[subscription.id] = subscription
        return subscription

    def unsubscribe(self, subscription: Any) -> None:
        if isinstance(subscription, RemoteSubscription):
            with self._subs_lock:
                self._subs.pop(subscription.id, None)
            subscription.close()

    def refresh_subscriptions(self) -> List[StandingQueryUpdate]:
        """Force a server-side refresh and deliver its deltas.

        The worker returns the refresh's updates in the response body;
        they are routed straight into the local subscription mirrors
        (version-deduplicated against the asynchronous stream copies),
        so the caller observes the refresh's effects synchronously —
        the contract ``ShardedNousService.refresh_subscriptions``
        promises its own callers.
        """
        _status, data = self._call("POST", "/v1/shard/refresh", {})
        body = self._checked(_status, data)
        delivered: List[StandingQueryUpdate] = []
        for wire_update in body.get("updates", []):
            with self._subs_lock:
                subscription = self._subs.get(
                    int(wire_update["subscription_id"])
                )
            if subscription is None:
                continue
            update = StandingQueryUpdate(
                subscription_id=int(wire_update["subscription_id"]),
                query_text=str(wire_update.get("query_text", "")),
                kg_version=int(wire_update["kg_version"]),
                added=tuple(dict(r) for r in wire_update.get("added", [])),
                removed=tuple(dict(r) for r in wire_update.get("removed", [])),
            )
            if subscription._deliver(update):
                delivered.append(update)
        return delivered

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Detach every stream and drop the session.  The worker
        process itself is owned by the :class:`ShardProcessManager`."""
        if self._closed:
            return
        self._closed = True
        with self._subs_lock:
            subscriptions = list(self._subs.values())
            self._subs.clear()
        for subscription in subscriptions:
            subscription.close()
        self._session.close()
