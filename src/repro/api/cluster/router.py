"""Document → shard assignment for the sharded service.

NOUS on Spark/GraphX splits the graph across executors by hashing vertex
ids; the sharded service does the document-level analogue: every
incoming document is routed to the shard owning its **dominant entity**
— the curated entity mentioned most often in the text — via the same
deterministic :class:`~repro.graph.partition.HashPartitioner` the
property graph uses for vertex placement.  Routing by dominant entity
(instead of by ``doc_id``) co-locates the facts a document contributes
with the other facts about the same entity, which is what keeps
entity-centric queries shard-local and the window's pattern embeddings
mostly intact.

Dominant-entity detection is deliberately *cheap*: an n-gram scan of the
text against the reference KB's alias table.  Running the full NLP
pipeline here would double the most expensive stage of ingestion just to
pick a shard; the alias scan is a few percent of one document's NLP
cost and agrees with the pipeline's NER on gazetteer mentions, which are
exactly the mentions that matter for placement.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.graph.partition import HashPartitioner, _stable_hash
from repro.kb.aliases import normalize_alias
from repro.kb.knowledge_base import KnowledgeBase

_WORD_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9'\-]*")


class DocumentRouter:
    """Deterministic document and fact placement over ``num_shards``.

    Args:
        kb: Reference (curated) knowledge base; only its alias table is
            read, the KB is never mutated.
        num_shards: Number of shards to route across.
    """

    def __init__(self, kb: KnowledgeBase, num_shards: int) -> None:
        self.partitioner = HashPartitioner(num_shards)
        # alias key (normalized, as a word tuple) -> entity id.  Built
        # once from the reference KB; ambiguous aliases resolve to the
        # highest-prior candidate exactly like the linker's first guess.
        self._alias_entities: Dict[Tuple[str, ...], str] = {}
        self._max_alias_words = 1
        for entity in sorted(kb.entities()):
            for alias in kb.aliases.aliases_of(entity):
                words = tuple(normalize_alias(alias).split())
                if not words:
                    continue
                candidates = kb.aliases.candidates(alias)
                if not candidates:
                    continue
                self._alias_entities[words] = candidates[0][0]
                self._max_alias_words = max(self._max_alias_words, len(words))

    @property
    def num_shards(self) -> int:
        return self.partitioner.num_partitions

    def dominant_entity(self, text: str) -> Optional[str]:
        """The most frequently mentioned known entity, or ``None``.

        Ties break on the lexicographically smallest entity id so the
        answer is independent of scan order and hash seed.
        """
        words = [w.lower() for w in _WORD_RE.findall(text)]
        counts: Dict[str, int] = {}
        i = 0
        n = len(words)
        while i < n:
            matched_len = 0
            matched_entity = ""
            # Longest-match-first mirrors the NER's greedy gazetteer
            # matching ("Drone Industry" is one mention, not "Drone").
            limit = min(self._max_alias_words, n - i)
            for length in range(limit, 0, -1):
                gram = tuple(normalize_alias(" ".join(words[i : i + length])).split())
                entity = self._alias_entities.get(gram)
                if entity is not None:
                    matched_len = length
                    matched_entity = entity
                    break
            if matched_len:
                counts[matched_entity] = counts.get(matched_entity, 0) + 1
                i += matched_len
            else:
                i += 1
        if not counts:
            return None
        return min(counts.items(), key=lambda kv: (-kv[1], kv[0]))[0]

    def shard_for_document(
        self, text: str, doc_id: str = ""
    ) -> Tuple[int, Optional[str]]:
        """Shard index (and the dominant entity, if any) for a document.

        Documents with no recognisable mention fall back to hashing the
        ``doc_id`` (or the text itself when the id is empty), so routing
        stays deterministic and content-addressed either way.
        """
        entity = self.dominant_entity(text)
        if entity is not None:
            return self.partitioner.partition(entity), entity
        fallback = doc_id or text
        return _stable_hash(fallback) % self.num_shards, None

    def shard_for_entity(self, entity: str) -> int:
        """Home shard of an entity (used for structured facts and for
        the cluster's edge-cut accounting)."""
        return self.partitioner.partition(entity)

    def spread(self, texts: List[str]) -> List[int]:
        """Documents per shard for a corpus (diagnostics/benchmarks)."""
        counts = [0] * self.num_shards
        for text in texts:
            shard, _entity = self.shard_for_document(text)
            counts[shard] += 1
        return counts
