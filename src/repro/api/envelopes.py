"""Typed request/response envelopes and the structured error taxonomy.

Every request enters the service as a frozen dataclass and every answer
leaves it as an :class:`ApiResponse`; both sides round-trip through
plain JSON-compatible dicts (``to_dict`` / ``from_dict``), so the same
contract serves in-process callers, the CLI's ``--json`` mode and any
future HTTP adapter.

Errors never escape as raw exceptions: :func:`error_from_exception`
maps the :class:`~repro.errors.ReproError` hierarchy onto a stable,
dotted error-code taxonomy (``query.parse``, ``qa``, ``config`` ...)
carried inside the envelope.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Type

import repro.errors as errors_module
from repro.errors import (
    ClusterError,
    ConfigError,
    ExtractionError,
    GraphError,
    KBError,
    LinkingError,
    MiningError,
    NLPError,
    PatternError,
    QAError,
    QueryError,
    QueryParseError,
    ReproError,
    StorageError,
    TenancyError,
    TenantExistsError,
    TenantQuotaError,
    UnknownTenantError,
)

API_VERSION = "1"

# Most-derived classes first: the mapper walks this list and takes the
# first match, so subclasses must precede their bases.
_ERROR_TAXONOMY: tuple = (
    (QueryParseError, "query.parse"),
    (QueryError, "query"),
    (PatternError, "mining.pattern"),
    (MiningError, "mining"),
    (QAError, "qa"),
    (ClusterError, "cluster"),
    (ConfigError, "config"),
    (GraphError, "graph"),
    (KBError, "kb"),
    (ExtractionError, "nlp.extraction"),
    (NLPError, "nlp"),
    (LinkingError, "linking"),
    (StorageError, "storage"),
    (UnknownTenantError, "tenancy.unknown"),
    (TenantExistsError, "tenancy.exists"),
    (TenantQuotaError, "tenancy.quota"),
    (TenancyError, "tenancy"),
    (ReproError, "internal"),
)


@dataclass(frozen=True)
class ApiError:
    """Structured error carried inside a failed :class:`ApiResponse`.

    Attributes:
        code: Stable dotted taxonomy code (``query.parse``, ``qa`` ...).
        message: Human-readable description (the exception text).
        exception: Name of the originating exception class.
    """

    code: str
    message: str
    exception: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "exception": self.exception,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ApiError":
        return cls(
            code=str(data["code"]),
            message=str(data["message"]),
            exception=str(data.get("exception", "")),
        )


# Memory addresses make otherwise-identical errors compare unequal and
# leak process internals onto the wire.
_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]{4,}")


def normalize_error_message(exc: BaseException) -> str:
    """A stable, human-readable message for the wire.

    Raw ``str(exc)`` is not wire-safe in every case: ``KeyError``
    stringifies to the *repr* of its key (``"'text'"``), a bare
    ``Exception()`` stringifies to nothing, and default object reprs
    embed memory addresses that differ run to run.  Every
    :class:`ApiError` message goes through this normalisation, so
    clients always see ``code`` + a meaningful ``message``.
    """
    if isinstance(exc, KeyError) and exc.args:
        message = f"missing key: {exc.args[0]}"
    else:
        message = str(exc).strip()
    if not message:
        message = type(exc).__name__
    return _ADDRESS_RE.sub("0x…", message)


def error_from_exception(exc: BaseException) -> ApiError:
    """Map an exception onto the structured taxonomy.

    Every :class:`~repro.errors.ReproError` subclass gets a stable
    subsystem code; anything else is ``internal``.  Messages are
    normalised (:func:`normalize_error_message`) before they go over
    the wire.
    """
    message = normalize_error_message(exc)
    for exc_type, code in _ERROR_TAXONOMY:
        if isinstance(exc, exc_type):
            return ApiError(
                code=code, message=message, exception=type(exc).__name__
            )
    return ApiError(
        code="internal", message=message, exception=type(exc).__name__
    )


def exception_from_error(error: ApiError) -> ReproError:
    """Reconstruct an exception from an :class:`ApiError` received over
    the wire (the inverse a remote-shard client needs: re-raising a
    worker's error locally must round-trip back into the *same* code,
    message and exception name when it reaches the next envelope
    boundary).

    The originating class is looked up by its recorded name in
    :mod:`repro.errors`; unknown names fall back to the taxonomy class
    for the code, then to :class:`~repro.errors.ReproError`.  The
    instance is built via ``__new__`` because several subclasses take
    structured constructor arguments that did not travel on the wire.
    """
    candidate = getattr(errors_module, error.exception, None)
    cls: Type[ReproError] = ReproError
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        cls = candidate
    else:
        for exc_type, code in _ERROR_TAXONOMY:
            if code == error.code:
                cls = exc_type
                break
    exc = cls.__new__(cls)
    Exception.__init__(exc, error.message)
    assert isinstance(exc, ReproError)
    return exc


@dataclass(frozen=True)
class IngestRequest:
    """One document submitted for ingestion.

    Attributes:
        text: Document body.
        doc_id: Stable document id (empty: assigned by the caller's
            convention, not by the service).
        date: Publication date as a string (``"2015-06-10"``,
            ``"June 2015"`` ... — anything
            :func:`repro.nlp.dates.parse_date` accepts), or ``None``.
        source: Provenance tag for trust tracking.
    """

    text: str
    doc_id: str = ""
    date: Optional[str] = None
    source: str = "unknown"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "text": self.text,
            "doc_id": self.doc_id,
            "date": self.date,
            "source": self.source,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IngestRequest":
        date = data.get("date")
        return cls(
            text=str(data["text"]),
            doc_id=str(data.get("doc_id", "")),
            date=None if date is None else str(date),
            source=str(data.get("source", "unknown")),
        )

    @classmethod
    def from_article(cls, article: Any) -> "IngestRequest":
        """Build a request from an ``Article``-like object
        (``text`` / ``doc_id`` / ``date`` / ``source`` attributes)."""
        date = getattr(article, "date", None)
        return cls(
            text=article.text,
            doc_id=getattr(article, "doc_id", ""),
            date=None if date is None else str(date),
            source=getattr(article, "source", "unknown"),
        )


@dataclass(frozen=True)
class QueryRequest:
    """One NL-like query string (Figure 5's five classes)."""

    text: str

    def to_dict(self) -> Dict[str, Any]:
        return {"text": self.text}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryRequest":
        return cls(text=str(data["text"]))


@dataclass(frozen=True)
class ApiResponse:
    """Uniform response envelope for every service operation.

    Attributes:
        ok: ``False`` when ``error`` is set.
        kind: Result kind — a query class (``"entity"``, ``"trending"``,
            ...), ``"ingest"``, ``"statistics"`` or ``"error"``.
        payload: Wire-format payload dict (see :mod:`repro.api.wire`);
            ``None`` on error.
        rendered: Plain-text rendering for terminal display.
        error: Structured error when the operation failed.
        elapsed_ms: Service-side execution time.
        kg_version: Monotonic KG version stamp the result was computed
            against (-1 when not applicable).
        cached: True when served from the query-result cache.
        api_version: Envelope schema version.
    """

    ok: bool
    kind: str
    payload: Optional[Dict[str, Any]] = None
    rendered: str = ""
    error: Optional[ApiError] = None
    elapsed_ms: float = 0.0
    kg_version: int = -1
    cached: bool = False
    api_version: str = API_VERSION

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "kind": self.kind,
            "payload": self.payload,
            "rendered": self.rendered,
            "error": None if self.error is None else self.error.to_dict(),
            "elapsed_ms": self.elapsed_ms,
            "kg_version": self.kg_version,
            "cached": self.cached,
            "api_version": self.api_version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ApiResponse":
        error = data.get("error")
        payload = data.get("payload")
        return cls(
            ok=bool(data["ok"]),
            kind=str(data["kind"]),
            payload=None if payload is None else dict(payload),
            rendered=str(data.get("rendered", "")),
            error=None if error is None else ApiError.from_dict(error),
            elapsed_ms=float(data.get("elapsed_ms", 0.0)),
            kg_version=int(data.get("kg_version", -1)),
            cached=bool(data.get("cached", False)),
            api_version=str(data.get("api_version", API_VERSION)),
        )

    @classmethod
    def failure(cls, exc: BaseException, kind: str = "error") -> "ApiResponse":
        """Wrap an exception as a failed envelope."""
        return cls(ok=False, kind=kind, error=error_from_exception(exc))

    def raise_for_error(self) -> "ApiResponse":
        """Re-raise a failed envelope as :class:`ReproError`; returns
        ``self`` unchanged when ``ok``."""
        if self.error is not None:
            raise ReproError(f"[{self.error.code}] {self.error.message}")
        return self
