"""``NousService``: the service facade over construction and querying.

Three responsibilities on top of the raw :class:`~repro.core.pipeline.Nous`
/ :class:`~repro.query.engine.QueryEngine` pair:

- **Envelope discipline** — every operation takes a typed request and
  returns an :class:`~repro.api.envelopes.ApiResponse`; exceptions are
  mapped onto the structured error taxonomy instead of escaping.
- **Async ingestion queue** — :meth:`NousService.submit` enqueues one
  document and returns an :class:`IngestTicket` immediately.  A drainer
  micro-batches pending documents into ``Nous.ingest_batch`` under a
  ``max_batch`` / ``max_delay`` backpressure policy, so single-document
  callers transparently ride the ~3x amortised batch hot path whenever
  there is concurrent traffic.
- **Standing queries** — :meth:`NousService.subscribe` registers a
  continuous query.  After every drain (or explicit refresh) each
  subscription is re-evaluated iff the KG version stamp moved, and the
  subscriber receives *delta* results: rows added and rows removed since
  its last notification.  This makes change feeds — including rows that
  vanish purely because their supporting window edges were evicted — a
  first-class API instead of a cache-bypass special case.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.envelopes import (
    ApiResponse,
    IngestRequest,
    QueryRequest,
    error_from_exception,
)
from repro.api.wire import delta_rows, encode_payload
from repro.compute.shardstep import ComputeStepExecutor
from repro.core.pipeline import Nous, NousConfig
from repro.core.statistics import GraphStatistics, compute_statistics
from repro.errors import ConfigError, ReproError, StorageError
from repro.kb.knowledge_base import KnowledgeBase
from repro.mining.patterns import Pattern
from repro.nlp.dates import parse_date
from repro.query.engine import QueryEngine, QueryResult
from repro.query.model import Query, TrendingQuery
from repro.query.parser import parse_query
from repro.storage import (
    JsonLinesBackend,
    record_ingest,
    replay_record,
    restore_nous,
    snapshot_nous,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Queue and cache policy for :class:`NousService`.

    Attributes:
        max_batch: Upper bound on documents per drain (backpressure: a
            full batch drains immediately).
        max_delay: Seconds the drainer waits for a batch to fill before
            draining a partial one; the latency bound for single
            uncontended submissions.
        auto_start: Start the background drainer thread.  When False the
            queue only drains on explicit :meth:`NousService.flush` —
            deterministic single-threaded mode for tests and drivers.
        cache_size / enable_cache: Passed to the query-result cache.
        snapshot_every: With a ``data_dir``, write a full snapshot after
            this many drained micro-batches (0 disables periodic
            snapshots; :meth:`NousService.snapshot` remains available).
    """

    max_batch: int = 32
    max_delay: float = 0.05
    auto_start: bool = True
    cache_size: int = 256
    enable_cache: bool = True
    snapshot_every: int = 0

    def validate(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.max_delay < 0.0:
            raise ConfigError("max_delay must be >= 0")
        if self.snapshot_every < 0:
            raise ConfigError("snapshot_every must be >= 0")


class IngestTicket:
    """Handle to one queued document; fulfilled when its batch drains."""

    def __init__(self, doc_id: str) -> None:
        self.doc_id = doc_id
        self._event = threading.Event()
        self._response: Optional[ApiResponse] = None

    def done(self) -> bool:
        """True once the document's batch has been ingested."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> ApiResponse:
        """Block until the document is ingested; returns its envelope.

        Raises:
            ReproError: when the ticket is not fulfilled within
                ``timeout`` seconds.
        """
        if not self._event.wait(timeout):
            raise ReproError(
                f"ingest ticket for {self.doc_id!r} not fulfilled "
                f"within {timeout}s"
            )
        assert self._response is not None
        return self._response

    def _fulfill(self, response: ApiResponse) -> None:
        self._response = response
        self._event.set()


@dataclass(frozen=True)
class StandingQueryUpdate:
    """One delta notification from a standing query.

    Attributes:
        subscription_id: The originating subscription.
        query_text: Normalized text of the standing query.
        kg_version: KG version stamp the refresh evaluated against.
        added: Rows present now but not at the last notification
            (includes rows whose observable content changed).
        removed: Rows present at the last notification but not now —
            e.g. window rows whose supporting edges were evicted.
    """

    subscription_id: int
    query_text: str
    kg_version: int
    added: Tuple[Dict[str, Any], ...] = ()
    removed: Tuple[Dict[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "subscription_id": self.subscription_id,
            "query_text": self.query_text,
            "kg_version": self.kg_version,
            "added": [dict(r) for r in self.added],
            "removed": [dict(r) for r in self.removed],
        }


class Subscription:
    """A registered standing (continuous) query.

    Updates accumulate on the subscription and are drained with
    :meth:`poll`; an optional callback receives each update as it is
    produced.  The registration-time result set is the baseline — the
    first update describes changes *since subscribing*, not the initial
    rows.
    """

    def __init__(
        self,
        sub_id: int,
        query: Query,
        rows: Dict[str, Dict[str, Any]],
        kg_version: int,
        callback: Optional[Callable[[StandingQueryUpdate], None]] = None,
        trending_full_view: bool = False,
    ) -> None:
        self.id = sub_id
        self.query = query
        self.active = True
        #: Trending rows cover the miner's full support table instead of
        #: its closed-frequent slice (see :meth:`NousService.subscribe`).
        self.trending_full_view = trending_full_view
        #: Most recent evaluation/callback failure, if any (refreshes
        #: never propagate subscriber errors into the ingestion path).
        self.last_error: Optional[BaseException] = None
        self._rows = rows
        self._kg_version = kg_version
        self._callback = callback
        self._updates: Deque[StandingQueryUpdate] = deque()

    @property
    def query_text(self) -> str:
        return self.query.text

    @property
    def current_rows(self) -> List[Dict[str, Any]]:
        """The rows of the most recent evaluation."""
        return [dict(r) for r in self._rows.values()]

    @property
    def last_kg_version(self) -> int:
        """KG version stamp the current rows were evaluated at (the
        baseline version until the first delta)."""
        return self._kg_version

    def poll(self) -> List[StandingQueryUpdate]:
        """Drain and return pending delta notifications, oldest first."""
        updates: List[StandingQueryUpdate] = []
        while self._updates:
            updates.append(self._updates.popleft())
        return updates

    def _apply(
        self, rows: Dict[str, Dict[str, Any]], kg_version: int
    ) -> Optional[StandingQueryUpdate]:
        """Diff a fresh evaluation against the last one; record and
        return the update when anything changed."""
        added = [
            row
            for key, row in rows.items()
            if self._rows.get(key) != row
        ]
        removed = [
            row for key, row in self._rows.items() if key not in rows
        ]
        self._rows = rows
        self._kg_version = kg_version
        if not added and not removed:
            return None
        update = StandingQueryUpdate(
            subscription_id=self.id,
            query_text=self.query.text,
            kg_version=kg_version,
            added=tuple(added),
            removed=tuple(removed),
        )
        self._updates.append(update)
        return update


@dataclass(frozen=True)
class StreamView:
    """A consistent snapshot of one service's streaming (window) state.

    Scatter-gather trending assembly reads this from every shard: the
    *full* pattern-support table (not just the closed-frequent slice —
    a pattern infrequent on every shard can still be frequent after the
    supports are summed), plus the window size and stream clock needed
    to build a merged :class:`~repro.mining.streaming.WindowReport`.
    Reading supports never consumes the miner's transition state.
    """

    supports: Dict[Pattern, int]
    min_support: int
    window_edges: int
    last_timestamp: float
    kg_version: int


class NousService:
    """The single supported entry point to a NOUS system.

    Args:
        nous: An existing system to wrap; built from ``kb`` / ``config``
            when omitted.
        kb: Starting curated KB (ignored when ``nous`` is given).
        config: Pipeline settings (ignored when ``nous`` is given).
        service_config: Queue/cache policy.
        data_dir: Enable the durability layer: own this directory
            through a :class:`~repro.storage.JsonLinesBackend`, append a
            WAL record per accepted ingest call, and — before the
            drainer starts — recover whatever snapshot/WAL state the
            directory already holds (cold start).  The engine passed in
            (or built from ``kb``/``config``) must be freshly
            constructed from the same curated KB the persisted state
            grew from.
    """

    def __init__(
        self,
        nous: Optional[Nous] = None,
        kb: Optional[KnowledgeBase] = None,
        config: Optional[NousConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        data_dir: Optional[str] = None,
    ) -> None:
        self.service_config = service_config or ServiceConfig()
        self.service_config.validate()
        self.nous = nous if nous is not None else Nous(kb=kb, config=config)
        self.data_dir = data_dir
        self._storage = (
            JsonLinesBackend(data_dir) if data_dir is not None else None
        )
        self._wal_records = 0
        self._batches_since_snapshot = 0
        self._recording = False
        self.engine = QueryEngine(
            self.nous,
            cache_size=self.service_config.cache_size,
            enable_cache=self.service_config.enable_cache,
        )
        # One lock serialises every KG-touching operation (drains,
        # queries, subscription refreshes); the queue has its own lock so
        # submissions never wait behind an in-flight drain.
        self._engine_lock = threading.RLock()
        self._queue_lock = threading.Lock()
        self._queue_changed = threading.Condition(self._queue_lock)
        self._idle = threading.Condition(self._queue_lock)
        self._pending: Deque[Tuple[IngestRequest, IngestTicket]] = deque()
        self._first_pending_at = 0.0
        self._draining = False
        self._flush_requested = False
        self._closed = False
        self._subscriptions: Dict[int, Subscription] = {}
        self._next_subscription_id = 1
        self._compute_executor: Optional[ComputeStepExecutor] = None
        self.batches_drained = 0
        self.documents_drained = 0
        #: Standing-query evaluation/callback failures swallowed so far.
        self.subscription_errors = 0
        self._drainer: Optional[threading.Thread] = None
        if self._storage is not None:
            self.recover()
        if self.service_config.auto_start:
            self._drainer = threading.Thread(
                target=self._drain_loop, name="nous-ingest-drainer", daemon=True
            )
            self._drainer.start()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "NousService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Drain outstanding work and stop the background thread."""
        self.flush()
        with self._queue_lock:
            self._closed = True
            self._queue_changed.notify_all()
        if self._drainer is not None:
            self._drainer.join(timeout=5.0)
            self._drainer = None
        if self._storage is not None:
            self._storage.close()
        # Release the engine's extraction pool (no-op when serial).
        self.nous.close()

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Write a full engine+service snapshot to the data directory.

        The snapshot records how many WAL records its state already
        covers, so recovery replays only the suffix; the WAL itself is
        left in place — a later recovery that finds the snapshot
        missing or corrupt degrades to a full-WAL replay instead of
        losing data.

        Returns:
            The composite KG version stamp the snapshot captured.

        Raises:
            StorageError: without a ``data_dir``, or when the write
                fails.
        """
        if self._storage is None:
            raise StorageError("snapshot() needs a data_dir")
        with self._engine_lock:
            state = {
                "engine": snapshot_nous(self.nous),
                "service": {
                    "batches_drained": self.batches_drained,
                    "documents_drained": self.documents_drained,
                },
                "wal_covered": self._wal_records,
            }
            self._storage.write_snapshot(state)
            self._batches_since_snapshot = 0
            return self.nous.dynamic.version

    def recover(self) -> int:
        """Rebuild state from the data directory onto the fresh engine.

        Restores the last good snapshot (if any), then replays the WAL
        records the snapshot does not cover.  A missing or corrupt
        snapshot degrades to replaying the full WAL from the engine's
        constructed state; a torn WAL tail ends the replay at the last
        intact record.  Runs automatically during construction when a
        ``data_dir`` is configured.

        Returns:
            Number of WAL records replayed.

        Raises:
            StorageError: without a ``data_dir``, or when the engine has
                already ingested (recovery only targets a fresh engine).
        """
        if self._storage is None:
            raise StorageError("recover() needs a data_dir")
        with self._engine_lock:
            if (
                self.nous.dynamic.facts_streamed
                or self.nous.dynamic.window.total_added
            ):
                raise StorageError(
                    "recover() targets a fresh engine; this one already "
                    "ingested (replaying on top would double-apply)"
                )
            records = self._storage.read_wal()
            self._wal_records = len(records)
            state = self._storage.read_snapshot()
            covered = 0
            if state is not None:
                covered = min(int(state.get("wal_covered", 0)), len(records))
                restore_nous(self.nous, state["engine"])
                service_state = state.get("service", {})
                self.batches_drained = service_state.get("batches_drained", 0)
                self.documents_drained = service_state.get(
                    "documents_drained", 0
                )
            for record in records[covered:]:
                replay_record(self.nous, record)
                service_state = record.get("service")
                if service_state is not None:
                    self.batches_drained = service_state["batches_drained"]
                    self.documents_drained = service_state[
                        "documents_drained"
                    ]
            return len(records) - covered

    def _append_wal(self, record: Dict[str, Any]) -> None:
        """Durably append one effect record (caller holds the engine
        lock, so WAL order always matches effect order)."""
        assert self._storage is not None
        record["service"] = {
            "batches_drained": self.batches_drained,
            "documents_drained": self.documents_drained,
        }
        self._storage.append_wal(record)
        self._wal_records += 1

    @contextmanager
    def _durable_engine_lock(self) -> Iterator[None]:
        """The engine lock, plus WAL capture for *query-path* mutations.

        Query execution is not read-only: entity linking may mint an
        entity for an unknown mention, moving the KG version.  Durable
        mode records the guarded block's effects and appends a WAL
        record iff the version stamp moved, so a recovered engine
        reaches the exact pre-crash stamp even when queries (or
        standing-query refreshes) interleaved with ingestion.
        """
        with self._engine_lock:
            if self._storage is None or self._recording:
                yield
                return
            before = self.nous.dynamic.version
            self._recording = True
            try:
                with record_ingest(self.nous) as recorder:
                    try:
                        yield
                    except BaseException:
                        # A query can fail *after* linking minted an
                        # entity (e.g. no path between the endpoints);
                        # the mint is real engine state and must be as
                        # durable as the failure envelope is visible.
                        recorder.finish()
                        raise
            finally:
                self._recording = False
                if (
                    recorder.record is not None
                    and self.nous.dynamic.version != before
                ):
                    self._append_wal(recorder.record)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    @staticmethod
    def _validated_date(request: IngestRequest) -> None:
        """Reject unparseable date strings at submission time.

        Silently ingesting a document whose date failed to parse would
        corrupt stream ordering (the fact would take the +1 timestamp
        fallback) — fail the request loudly instead.
        """
        if request.date is not None and parse_date(request.date) is None:
            raise ConfigError(
                f"unparseable date {request.date!r} on document "
                f"{request.doc_id!r}"
            )

    def submit(
        self, request: Union[IngestRequest, Any]
    ) -> IngestTicket:
        """Enqueue one document; returns immediately with a ticket.

        Accepts an :class:`IngestRequest` or any ``Article``-like object
        (``text`` / ``doc_id`` / ``date`` / ``source``).

        Raises:
            ConfigError: when the request carries a date string that
                does not parse.
        """
        if not isinstance(request, IngestRequest):
            request = IngestRequest.from_article(request)
        self._validated_date(request)
        ticket = IngestTicket(request.doc_id)
        with self._queue_lock:
            if self._closed:
                raise ReproError("service is closed")
            if not self._pending:
                self._first_pending_at = time.monotonic()
            self._pending.append((request, ticket))
            self._queue_changed.notify_all()
        return ticket

    def submit_many(
        self, requests: Sequence[Union[IngestRequest, Any]]
    ) -> List[IngestTicket]:
        """Enqueue a sequence of documents atomically (one ticket each).

        The whole sequence lands in the queue before the drainer can
        carve its next batch, so bulk submitters get maximal batches
        instead of racing the drainer document by document.
        """
        normalized = [
            request
            if isinstance(request, IngestRequest)
            else IngestRequest.from_article(request)
            for request in requests
        ]
        for request in normalized:
            self._validated_date(request)
        tickets: List[IngestTicket] = []
        with self._queue_lock:
            if self._closed:
                raise ReproError("service is closed")
            for request in normalized:
                if not self._pending:
                    self._first_pending_at = time.monotonic()
                ticket = IngestTicket(request.doc_id)
                self._pending.append((request, ticket))
                tickets.append(ticket)
            self._queue_changed.notify_all()
        return tickets

    def ingest(
        self,
        request: Union[IngestRequest, Any],
        timeout: Optional[float] = 60.0,
    ) -> ApiResponse:
        """Submit one document and block until it is ingested.

        The document still travels through the micro-batching queue, so
        concurrent callers share one amortised ``ingest_batch`` pass.
        """
        ticket = self.submit(request)
        if self._drainer is None:
            self.flush()
        return ticket.result(timeout=timeout)

    def ingest_facts(
        self,
        facts: Sequence[Tuple[str, str, str]],
        date: Optional[str] = None,
        source: str = "structured",
        confidence: float = 0.9,
    ) -> ApiResponse:
        """Ingest structured ``(s, p, o)`` facts, bypassing NLP (§3.1's
        log/bibliography domains).  Synchronous; standing queries are
        refreshed before returning."""
        start = time.perf_counter()
        try:
            parsed_date = None
            if date is not None:
                parsed_date = parse_date(date)
                if parsed_date is None:
                    raise ConfigError(f"unparseable date {date!r}")
            with self._engine_lock:
                if self._storage is not None:
                    with record_ingest(self.nous) as recorder:
                        accepted = self.nous.ingest_facts(
                            facts, date=parsed_date, source=source,
                            confidence=confidence,
                        )
                    assert recorder.record is not None
                    self._append_wal(recorder.record)
                else:
                    accepted = self.nous.ingest_facts(
                        facts, date=parsed_date, source=source,
                        confidence=confidence,
                    )
                version = self.nous.dynamic.version
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            return ApiResponse.failure(exc, kind="ingest")
        # The facts are committed: whatever happens to the standing
        # queries now, the caller must see ok=True (a failure here would
        # invite a double-ingesting retry).
        self.refresh_subscriptions()
        return ApiResponse(
            ok=True,
            kind="ingest",
            payload={"accepted": accepted, "doc_id": "", "structured": True},
            rendered=f"accepted {accepted} structured fact(s)",
            elapsed_ms=(time.perf_counter() - start) * 1000.0,
            kg_version=version,
        )

    @property
    def pending_count(self) -> int:
        """Documents enqueued but not yet drained."""
        with self._queue_lock:
            return len(self._pending)

    @property
    def kg_version(self) -> int:
        """The monotonic KG version stamp (see
        :attr:`~repro.core.dynamic_kg.DynamicKnowledgeGraph.version`).

        Lock-free: the stamp is advisory freshness information for
        health probes and heartbeats, which must not queue behind an
        in-flight drain.
        """
        return self.nous.dynamic.version

    @property
    def kg_version_hint(self) -> int:
        """Cheapest available version stamp (exact for an in-process
        shard; a remote shard returns its last-read health value so
        per-delta stamping never blocks on a wire round trip)."""
        return self.nous.dynamic.version

    @property
    def documents_ingested(self) -> int:
        """Documents fully processed by the pipeline so far."""
        return self.nous.documents_ingested

    @property
    def draining_in_background(self) -> bool:
        """True when a background drainer thread owns the queue (adapters
        without one — ``auto_start=False`` — must flush explicitly)."""
        return self._drainer is not None

    @property
    def alive(self) -> bool:
        """An in-process shard is alive for as long as it exists (the
        process-mode counterpart reports its worker's liveness)."""
        return True

    def flush(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted document has been ingested.

        With a running drainer this waits for the queue to empty
        (asking the drainer to skip its batching delay); without one
        (``auto_start=False``) it drains synchronously in the calling
        thread, in ``max_batch``-sized chunks.
        """
        if self._drainer is None:
            while True:
                batch = self._take_batch()
                if not batch:
                    return
                self._ingest_batch(batch)
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        with self._queue_lock:
            self._flush_requested = True
            self._queue_changed.notify_all()
            try:
                while self._pending or self._draining:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise ReproError("flush timed out")
                    self._idle.wait(timeout=remaining)
            finally:
                # Always restore the batching delay — a timed-out flush
                # must not leave the drainer in drain-immediately mode.
                self._flush_requested = False

    # ------------------------------------------------------------------
    # the drainer
    # ------------------------------------------------------------------
    def _take_batch(self) -> List[Tuple[IngestRequest, IngestTicket]]:
        """Pop up to ``max_batch`` pending documents (no waiting)."""
        with self._queue_lock:
            batch: List[Tuple[IngestRequest, IngestTicket]] = []
            while self._pending and len(batch) < self.service_config.max_batch:
                batch.append(self._pending.popleft())
            return batch

    def _drain_loop(self) -> None:
        cfg = self.service_config
        while True:
            with self._queue_lock:
                while not self._pending and not self._closed:
                    self._queue_changed.wait()
                if not self._pending and self._closed:
                    return
                # Micro-batching: wait (bounded) for the batch to fill,
                # unless a flush or shutdown wants the queue empty now.
                deadline = self._first_pending_at + cfg.max_delay
                while (
                    len(self._pending) < cfg.max_batch
                    and not self._flush_requested
                    and not self._closed
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._queue_changed.wait(timeout=remaining)
                batch = []
                while self._pending and len(batch) < cfg.max_batch:
                    batch.append(self._pending.popleft())
                if self._pending:
                    # Left-over documents start a fresh delay window.
                    self._first_pending_at = time.monotonic()
                self._draining = True
            try:
                self._ingest_batch(batch)
            finally:
                with self._queue_lock:
                    self._draining = False
                    if not self._pending:
                        self._idle.notify_all()

    def _ingest_batch(
        self, batch: Sequence[Tuple[IngestRequest, IngestTicket]]
    ) -> None:
        """Run one micro-batch through ``ingest_batch``, fulfill its
        tickets, then refresh standing queries.

        The periodic confidence retrain is deferred while more documents
        are already waiting: consecutive micro-batches of one busy
        period share a single end-of-period retrain (exactly the
        amortisation a direct whole-corpus ``ingest_batch`` performs),
        instead of paying it once per drain.
        """
        if not batch:
            return
        articles = [
            _QueuedArticle(request) for request, _ticket in batch
        ]
        try:
            with self._engine_lock:
                if self._storage is not None:
                    # Record the batch's effects and append them to the
                    # WAL *before* any ticket is fulfilled: a fulfilled
                    # ticket is a durability acknowledgment.
                    with record_ingest(self.nous) as recorder:
                        results = self.nous.ingest_batch(
                            articles, defer_retrain=True
                        )
                        if self.pending_count == 0:
                            self.nous.retrain_if_due()
                    self.batches_drained += 1
                    self.documents_drained += len(batch)
                    assert recorder.record is not None
                    self._append_wal(recorder.record)
                else:
                    results = self.nous.ingest_batch(
                        articles, defer_retrain=True
                    )
                    if self.pending_count == 0:
                        self.nous.retrain_if_due()
                    self.batches_drained += 1
                    self.documents_drained += len(batch)
                version = self.nous.dynamic.version
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            failure = ApiResponse.failure(exc, kind="ingest")
            for _request, ticket in batch:
                ticket._fulfill(failure)
            return
        for (request, ticket), result in zip(batch, results):
            ticket._fulfill(
                ApiResponse(
                    ok=True,
                    kind="ingest",
                    payload=encode_payload("ingest", result),
                    rendered=(
                        f"{result.doc_id or '(no id)'}: accepted "
                        f"{result.accepted}/{result.raw_triples} triples"
                    ),
                    kg_version=version,
                )
            )
        self._batches_since_snapshot += 1
        if (
            self._storage is not None
            and self.service_config.snapshot_every
            and self._batches_since_snapshot
            >= self.service_config.snapshot_every
        ):
            self.snapshot()
        try:
            self.refresh_subscriptions()
        except Exception:  # noqa: BLE001 - drainer must survive anything
            # Subscriber errors are already isolated inside
            # refresh_subscriptions; this guards the drainer thread
            # against unexpected internal failures (a dead drainer would
            # hang every future submit/flush).
            self.subscription_errors += 1

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def query(self, request: Union[str, QueryRequest]) -> ApiResponse:
        """Execute one query; always returns an envelope (never raises
        for :class:`ReproError` failures)."""
        text = request.text if isinstance(request, QueryRequest) else request
        try:
            with self._durable_engine_lock():
                result = self.engine.execute_text(text)
            payload = encode_payload(result.kind, result.payload)
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            return ApiResponse.failure(exc)
        return ApiResponse(
            ok=True,
            kind=result.kind,
            payload=payload,
            rendered=result.rendered,
            elapsed_ms=result.elapsed_ms,
            kg_version=result.kg_version,
            cached=result.cached,
        )

    def statistics(self) -> ApiResponse:
        """Quality-dashboard statistics as an envelope (§4 feature 2)."""
        start = time.perf_counter()
        try:
            with self._engine_lock:
                stats = compute_statistics(self.nous.kb)
                version = self.nous.dynamic.version
            payload = encode_payload("statistics", stats)
            rendered = stats.render()
        except Exception as exc:  # noqa: BLE001 - envelope boundary
            return ApiResponse.failure(exc, kind="statistics")
        return ApiResponse(
            ok=True,
            kind="statistics",
            payload=payload,
            rendered=rendered,
            elapsed_ms=(time.perf_counter() - start) * 1000.0,
            kg_version=version,
        )

    # ------------------------------------------------------------------
    # scatter-gather hooks (consumed by repro.api.cluster)
    # ------------------------------------------------------------------
    def execute_query(self, query: Query) -> QueryResult:
        """Execute one parsed query under the engine lock, returning the
        engine's rich :class:`~repro.query.engine.QueryResult` (payload
        objects, not wire dicts).

        This is the scatter half of the cluster's scatter-gather router:
        merge-aware assembly needs the payload *objects* (summaries,
        ranked paths, reports) rather than their encoded form.
        """
        with self._durable_engine_lock():
            return self.engine.execute(query)

    def stream_view(self) -> StreamView:
        """Snapshot the full pattern-support table and stream clock.

        Unlike a trending query this never consumes the miner's
        newly-frequent/-infrequent transition state, so gathering shard
        views for a merged report leaves every shard's interactive
        trending output untouched.
        """
        with self._engine_lock:
            miner = self.nous.dynamic.miner
            return StreamView(
                supports=dict(miner.supports()),
                min_support=miner.min_support,
                window_edges=miner.window_size,
                last_timestamp=self.nous.last_timestamp,
                kg_version=self.nous.dynamic.version,
            )

    def graph_statistics(self) -> GraphStatistics:
        """Compute the quality statistics *object* under the engine lock
        (the envelope-returning :meth:`statistics` encodes this)."""
        with self._engine_lock:
            return compute_statistics(self.nous.kb)

    def extracted_fact_keys(self) -> List[Tuple[str, str, str]]:
        """``(subject, predicate, object)`` keys of every extracted
        (non-curated) fact, for the cluster's placement accounting."""
        with self._engine_lock:
            return [
                (triple.subject, triple.predicate, triple.object)
                for triple in self.nous.kb.store
                if not triple.curated
            ]

    def compute_step(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Run one stateless compute superstep over this shard's partition.

        The distributed-compute scatter hook (``POST /v1/shard/compute``
        on a worker): the coordinator sends a
        :class:`~repro.compute.protocol.ComputeRequest` in wire form and
        gets the wire-form response back.  Runs under the durable engine
        lock because the ``resolve`` op drives the entity linker, which
        may mint entities (a WAL-worthy mutation); the graph-scan ops
        are pure reads and the durable wrapper is a no-op for them.
        """
        with self._durable_engine_lock():
            if self._compute_executor is None:
                self._compute_executor = ComputeStepExecutor(self.nous)
            return self._compute_executor.execute(request)

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------
    def subscribe(
        self,
        query_text: str,
        callback: Optional[Callable[[StandingQueryUpdate], None]] = None,
        trending_full_view: bool = False,
    ) -> Subscription:
        """Register a continuous query.

        The query is evaluated once to establish a baseline; afterwards
        every queue drain (and every explicit
        :meth:`refresh_subscriptions`) re-evaluates it iff the KG
        version stamp moved, delivering added/removed row deltas via
        :meth:`Subscription.poll` and the optional ``callback``.

        Args:
            trending_full_view: For trending queries, produce rows over
                the miner's *full* support table instead of its
                closed-frequent slice.  Sub-threshold support movement
                then yields deltas too — the change signal a
                scatter-gather router needs, since a pattern invisible
                in every shard's closed view can still be frequent in
                the merged counts.  Default off: ordinary subscribers
                keep the monolith's closed-frequent row contract.

        Raises:
            ReproError: when the query cannot be parsed or does not
                support row-level deltas.
        """
        query = parse_query(query_text)
        with self._durable_engine_lock():
            rows, version = self._evaluate_rows(
                query, trending_full_view=trending_full_view
            )
            subscription = Subscription(
                self._next_subscription_id,
                query,
                rows,
                version,
                callback,
                trending_full_view=trending_full_view,
            )
            self._next_subscription_id += 1
            self._subscriptions[subscription.id] = subscription
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        """Deregister a standing query (idempotent)."""
        with self._engine_lock:
            self._subscriptions.pop(subscription.id, None)
            subscription.active = False

    @property
    def subscription_count(self) -> int:
        """Currently registered standing queries.

        Deliberately lock-free (``len`` of a dict is atomic under the
        GIL): health probes read this and must not block behind an
        in-flight drain holding the engine lock.
        """
        return len(self._subscriptions)

    def refresh_subscriptions(self) -> List[StandingQueryUpdate]:
        """Re-evaluate every standing query against the current KG.

        Subscriptions whose last evaluation already saw the current
        version stamp are skipped — no observable change can have
        happened.  Returns the updates produced by this refresh.

        A failing evaluation or subscriber callback never propagates:
        it is recorded on ``Subscription.last_error`` (and counted in
        :attr:`subscription_errors`) and the refresh moves on — a broken
        subscriber must not stall the ingestion queue.
        """
        updates: List[StandingQueryUpdate] = []
        callbacks: List[Tuple[Subscription, StandingQueryUpdate]] = []
        with self._durable_engine_lock():
            version = self.nous.dynamic.version
            for subscription in self._subscriptions.values():
                if subscription._kg_version == version:
                    continue
                try:
                    rows, at_version = self._evaluate_rows(
                        subscription.query,
                        trending_full_view=subscription.trending_full_view,
                    )
                except Exception as exc:  # noqa: BLE001 - isolation boundary
                    subscription.last_error = exc
                    self.subscription_errors += 1
                    continue
                update = subscription._apply(rows, at_version)
                if update is not None:
                    updates.append(update)
                    if subscription._callback is not None:
                        callbacks.append((subscription, update))
        # Callbacks run outside the engine lock so they may query the
        # service without deadlocking.
        for subscription, update in callbacks:
            try:
                subscription._callback(update)  # type: ignore[misc]
            except Exception as exc:  # noqa: BLE001 - isolation boundary
                subscription.last_error = exc
                self.subscription_errors += 1
        return updates

    def _evaluate_rows(
        self, query: Query, trending_full_view: bool = False
    ) -> Tuple[Dict[str, Dict[str, Any]], int]:
        """Evaluate one standing query into keyed rows.

        Trending is evaluated from the miner's *pure* closed-frequent
        view (or the full support table, see
        :meth:`subscribe` ``trending_full_view``) rather than through
        ``WindowReport``: the report's newly-frequent/-infrequent
        transition state is consumed on read, and standing queries must
        not steal those transitions from interactive callers.  Every
        other kind rides the query engine (and therefore the
        version-keyed result cache).
        """
        if isinstance(query, TrendingQuery):
            miner = self.nous.dynamic.miner
            if trending_full_view:
                view = sorted(miner.supports().items(), key=lambda kv: kv[1])
            else:
                view = miner.closed_frequent_patterns()
            return (
                delta_rows("trending", view),
                self.nous.dynamic.version,
            )
        result = self.engine.execute(query)
        return (
            delta_rows(result.kind, result.payload),
            result.kg_version,
        )


class _QueuedArticle:
    """Adapter: an :class:`IngestRequest` with the ``Article`` attribute
    surface that ``Nous.ingest_batch`` expects."""

    __slots__ = ("text", "doc_id", "date", "source")

    def __init__(self, request: IngestRequest) -> None:
        self.text = request.text
        self.doc_id = request.doc_id
        self.date = (
            parse_date(request.date) if request.date is not None else None
        )
        self.source = request.source
