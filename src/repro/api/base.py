"""Structural interfaces shared by the service implementations.

Two classes implement the NOUS service surface: the monolithic
:class:`~repro.api.service.NousService` and the sharded
:class:`~repro.api.cluster.ShardedNousService`.  Adapters that must work
against either one — the HTTP gateway, the CLI, the tenant registry —
are typed against these :class:`~typing.Protocol` definitions instead of
a concrete class, which is what makes ``nous serve --shards N`` a
drop-in swap.

The surface is layered so each consumer can name exactly what it needs:

- :class:`ServiceCore` — the serve surface proper: ingest, query,
  statistics, standing queries, flush/close, and the ``kg_version``
  freshness stamp.  What a request handler touches.
- :class:`ServiceTelemetry` — the introspection counters health
  endpoints and dashboards read.  No KG access, no mutation.
- :class:`ServiceLike` — core + telemetry: the full adapter contract
  (the name every existing adapter is typed against).
- :class:`ShardLike` — the *shard-internal* extension the
  scatter-gather router consumes on top of ``ServiceLike``.
- :class:`TenantRegistryLike` — tenant id → service resolution for a
  multi-tenant gateway (implemented by
  :class:`~repro.api.tenancy.TenantRegistry`).

The protocols are intentionally minimal: they name exactly the surface
the adapters consume, not everything the implementations offer.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
)

from repro.api.envelopes import ApiResponse, IngestRequest, QueryRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.api.service import IngestTicket, StandingQueryUpdate, StreamView
    from repro.api.tenancy import TenantSpec
    from repro.core.statistics import GraphStatistics
    from repro.query.engine import QueryResult
    from repro.query.model import Query


class SubscriptionLike(Protocol):
    """What delta consumers (the gateway's subscribe stream) need from a
    standing-query registration, monolithic or fanned-out.

    Implementations also carry ``active`` / ``last_error`` bookkeeping,
    but no protocol-typed consumer reads them, so they are deliberately
    *not* part of the contract.
    """

    id: int

    @property
    def query_text(self) -> str: ...

    @property
    def current_rows(self) -> List[Dict[str, Any]]: ...

    @property
    def last_kg_version(self) -> int: ...

    def poll(self) -> List["StandingQueryUpdate"]: ...


class ServiceCore(Protocol):
    """The serve surface proper: what a request handler calls.

    ``kg_version`` abstracts over the monolith's single
    ``DynamicKnowledgeGraph.version`` stamp and the cluster's composite
    (summed) stamp; both are monotonic and move on every observable
    change, which is all the freshness/caching contract requires.
    """

    def submit(self, request: Union[IngestRequest, Any]) -> "IngestTicket": ...

    def submit_many(
        self, requests: List[Any]
    ) -> List["IngestTicket"]: ...

    def query(self, request: Union[str, QueryRequest]) -> ApiResponse: ...

    def statistics(self) -> ApiResponse: ...

    def subscribe(
        self,
        query_text: str,
        callback: Optional[Callable[["StandingQueryUpdate"], None]] = None,
        trending_full_view: bool = False,
    ) -> SubscriptionLike: ...

    def unsubscribe(self, subscription: Any) -> None: ...

    def flush(self, timeout: Optional[float] = None) -> None: ...

    def close(self) -> None: ...

    @property
    def kg_version(self) -> int: ...


class ServiceTelemetry(Protocol):
    """Read-only queue/stream counters: the ``/v1/healthz`` payload and
    anything else a dashboard polls.  Every member is a property — this
    surface can never mutate the service."""

    @property
    def documents_ingested(self) -> int: ...

    @property
    def pending_count(self) -> int: ...

    @property
    def draining_in_background(self) -> bool: ...

    @property
    def subscription_count(self) -> int: ...

    @property
    def batches_drained(self) -> int: ...

    @property
    def documents_drained(self) -> int: ...

    @property
    def subscription_errors(self) -> int: ...


class ServiceLike(ServiceCore, ServiceTelemetry, Protocol):
    """The full adapter contract: serve surface plus telemetry.

    This is the name adapters are typed against; the split bases exist
    so narrower consumers (a health poller, a pure query client) can
    depend on exactly the slice they touch.
    """


class ShardLike(ServiceLike, Protocol):
    """The *shard-internal* surface the scatter-gather router consumes.

    On top of the adapter-facing :class:`ServiceLike` contract, the
    router needs the merge-aware hooks — payload *objects* rather than
    encoded envelopes, the miner's full support table, placement
    accounting, and full-view trending subscriptions.  Two classes
    implement it: the in-process :class:`~repro.api.service.NousService`
    and the wire-speaking
    :class:`~repro.api.cluster.RemoteShardClient` (one ``nous serve``
    worker subprocess per shard), which is what makes
    ``--shard-mode process`` a drop-in swap inside
    :class:`~repro.api.cluster.ShardedNousService`.
    """

    def ingest_facts(
        self,
        facts: Sequence[Tuple[str, str, str]],
        date: Optional[str] = None,
        source: str = "structured",
        confidence: float = 0.9,
    ) -> ApiResponse: ...

    def execute_query(self, query: "Query") -> "QueryResult": ...

    def stream_view(self) -> "StreamView": ...

    def graph_statistics(self) -> "GraphStatistics": ...

    def extracted_fact_keys(self) -> List[Tuple[str, str, str]]: ...

    def refresh_subscriptions(self) -> List["StandingQueryUpdate"]: ...

    def compute_step(self, request: Dict[str, Any]) -> Dict[str, Any]: ...

    @property
    def alive(self) -> bool: ...

    @property
    def kg_version_hint(self) -> int: ...


class TenantRegistryLike(Protocol):
    """Tenant id → service resolution, as the gateway consumes it.

    Implemented by :class:`~repro.api.tenancy.TenantRegistry`; the
    gateway is typed against this protocol so a deployment may swap in
    its own resolution strategy (a remote control plane, a fixed map)
    without touching the HTTP layer.
    """

    def get(self, name: str) -> ServiceLike: ...

    def spec(self, name: str) -> "TenantSpec": ...

    def tenant_names(self) -> List[str]: ...

    def describe(self) -> List[Dict[str, Any]]: ...

    def create(self, spec: "TenantSpec") -> Dict[str, Any]: ...

    def delete(self, name: str, drain: bool = True) -> Dict[str, Any]: ...

    def ensure_subscription_capacity(self, name: str) -> None: ...

    def close(self) -> None: ...
