"""JSON wire codecs for every query payload.

Each payload class that :class:`~repro.query.engine.QueryEngine` can
produce — :class:`~repro.core.pipeline.EntitySummary`,
:class:`~repro.mining.streaming.WindowReport`,
:class:`~repro.qa.pathsearch.RankedPath` lists, entity-trend rows,
pattern-match binding lists, :class:`~repro.core.statistics.GraphStatistics`
and :class:`~repro.core.pipeline.IngestResult` — gets a ``to_dict`` /
``from_dict`` pair built from JSON-safe primitives, with the round-trip
property ``decode_payload(kind, encode_payload(kind, x)) == x``.

:func:`delta_rows` flattens a payload into keyed rows; standing queries
diff those row maps between evaluations to produce added/removed deltas.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.compute.protocol import ComputeRequest, ComputeResponse
from repro.core.pipeline import EntitySummary, IngestResult
from repro.core.statistics import GraphStatistics
from repro.errors import QueryError
from repro.graph.property_graph import Edge
from repro.graph.temporal import TimedEdge
from repro.kb.triples import Triple
from repro.mining.patterns import Pattern, PatternEdge
from repro.mining.streaming import WindowReport
from repro.nlp.dates import SimpleDate
from repro.qa.pathsearch import RankedPath
from repro.query.model import (
    CentralityQuery,
    ComponentsQuery,
    EntityQuery,
    EntityTrendQuery,
    ExplanatoryQuery,
    PageRankQuery,
    PatternQuery,
    Query,
    RelationshipQuery,
    TrendingQuery,
)


def kind_of_query(query: Query) -> str:
    """The result-kind name of a parsed query (mirrors the engine's
    dispatch table).  Lives with the codecs because every consumer that
    keys or decodes rows by kind — the scatter-gather router, the
    gateway's delta-coalescing streams — resolves it from here."""
    if isinstance(query, TrendingQuery):
        return "trending"
    if isinstance(query, EntityTrendQuery):
        return "entity-trend"
    if isinstance(query, EntityQuery):
        return "entity"
    if isinstance(query, ExplanatoryQuery):
        return "explanatory"
    if isinstance(query, RelationshipQuery):
        return "relationship"
    if isinstance(query, PatternQuery):
        return "pattern"
    if isinstance(query, PageRankQuery):
        return "pagerank"
    if isinstance(query, ComponentsQuery):
        return "components"
    if isinstance(query, CentralityQuery):
        return "centrality"
    raise QueryError(  # pragma: no cover - future query classes
        f"unsupported query type: {type(query).__name__}"
    )

# ---------------------------------------------------------------------------
# leaf codecs
# ---------------------------------------------------------------------------


def date_to_wire(date: Optional[SimpleDate]) -> Optional[Dict[str, Any]]:
    if date is None:
        return None
    return {"year": date.year, "month": date.month, "day": date.day}


def date_from_wire(data: Optional[Mapping[str, Any]]) -> Optional[SimpleDate]:
    if data is None:
        return None
    month = data.get("month")
    day = data.get("day")
    return SimpleDate(
        year=int(data["year"]),
        month=None if month is None else int(month),
        day=None if day is None else int(day),
    )


def _prop_to_wire(value: Any) -> Any:
    if isinstance(value, SimpleDate):
        return {"__kind__": "date", "value": date_to_wire(value)}
    return value


def _prop_from_wire(value: Any) -> Any:
    if isinstance(value, dict) and value.get("__kind__") == "date":
        return date_from_wire(value["value"])
    return value


def edge_to_wire(edge: Edge) -> Dict[str, Any]:
    return {
        "eid": edge.eid,
        "src": edge.src,
        "dst": edge.dst,
        "label": edge.label,
        "props": {k: _prop_to_wire(v) for k, v in edge.props.items()},
    }


def edge_from_wire(data: Mapping[str, Any]) -> Edge:
    return Edge(
        eid=int(data["eid"]),
        src=data["src"],
        dst=data["dst"],
        label=str(data["label"]),
        props={k: _prop_from_wire(v) for k, v in dict(data["props"]).items()},
    )


def pattern_to_wire(pattern: Pattern) -> Dict[str, Any]:
    return {
        "edges": [
            {
                "src": e.src,
                "dst": e.dst,
                "src_label": e.src_label,
                "dst_label": e.dst_label,
                "predicate": e.predicate,
            }
            for e in pattern.edges
        ]
    }


def pattern_from_wire(data: Mapping[str, Any]) -> Pattern:
    return Pattern(
        edges=tuple(
            PatternEdge(
                src=int(e["src"]),
                dst=int(e["dst"]),
                src_label=str(e["src_label"]),
                dst_label=str(e["dst_label"]),
                predicate=str(e["predicate"]),
            )
            for e in data["edges"]
        )
    )


def triple_to_wire(triple: Triple) -> Dict[str, Any]:
    """A full KB fact, provenance included (snapshot/WAL state codec)."""
    return {
        "s": triple.subject,
        "p": triple.predicate,
        "o": triple.object,
        "confidence": triple.confidence,
        "source": triple.source,
        "date": date_to_wire(triple.date),
        "curated": triple.curated,
    }


def triple_from_wire(data: Mapping[str, Any]) -> Triple:
    return Triple(
        subject=str(data["s"]),
        predicate=str(data["p"]),
        object=str(data["o"]),
        confidence=float(data["confidence"]),
        source=str(data["source"]),
        date=date_from_wire(data["date"]),
        curated=bool(data["curated"]),
    )


def timed_edge_to_wire(edge: TimedEdge) -> Dict[str, Any]:
    """A sliding-window stream edge (snapshot/WAL state codec)."""
    return {
        "src": edge.src,
        "dst": edge.dst,
        "label": edge.label,
        "timestamp": edge.timestamp,
        "props": [[key, _prop_to_wire(value)] for key, value in edge.props],
    }


def timed_edge_from_wire(data: Mapping[str, Any]) -> TimedEdge:
    return TimedEdge(
        src=data["src"],
        dst=data["dst"],
        label=str(data["label"]),
        timestamp=float(data["timestamp"]),
        props=tuple(
            (str(key), _prop_from_wire(value)) for key, value in data["props"]
        ),
    )


# ---------------------------------------------------------------------------
# payload codecs
# ---------------------------------------------------------------------------


def entity_summary_to_wire(summary: EntitySummary) -> Dict[str, Any]:
    return {
        "entity": summary.entity,
        "entity_type": summary.entity_type,
        "description": summary.description,
        "facts": [list(fact) for fact in summary.facts],
        "recent_dates": list(summary.recent_dates),
        "neighbors": list(summary.neighbors),
    }


def entity_summary_from_wire(data: Mapping[str, Any]) -> EntitySummary:
    return EntitySummary(
        entity=str(data["entity"]),
        entity_type=str(data["entity_type"]),
        description=str(data["description"]),
        facts=[
            (str(s), str(p), str(o), float(conf), bool(curated))
            for s, p, o, conf, curated in data["facts"]
        ],
        recent_dates=[str(d) for d in data["recent_dates"]],
        neighbors=[str(n) for n in data["neighbors"]],
    )


def window_report_to_wire(report: WindowReport) -> Dict[str, Any]:
    return {
        "timestamp": report.timestamp,
        "window_edges": report.window_edges,
        "closed_frequent": [
            {"pattern": pattern_to_wire(p), "support": s}
            for p, s in report.closed_frequent
        ],
        "newly_frequent": [pattern_to_wire(p) for p in report.newly_frequent],
        "newly_infrequent": [
            {
                "pattern": pattern_to_wire(p),
                "survivors": [pattern_to_wire(s) for s in survivors],
            }
            for p, survivors in report.newly_infrequent
        ],
    }


def window_report_from_wire(data: Mapping[str, Any]) -> WindowReport:
    return WindowReport(
        timestamp=float(data["timestamp"]),
        window_edges=int(data["window_edges"]),
        closed_frequent=[
            (pattern_from_wire(row["pattern"]), int(row["support"]))
            for row in data["closed_frequent"]
        ],
        newly_frequent=[pattern_from_wire(p) for p in data["newly_frequent"]],
        newly_infrequent=[
            (
                pattern_from_wire(row["pattern"]),
                [pattern_from_wire(s) for s in row["survivors"]],
            )
            for row in data["newly_infrequent"]
        ],
    )


def ranked_path_to_wire(path: RankedPath) -> Dict[str, Any]:
    return {
        "nodes": list(path.nodes),
        "edges": [edge_to_wire(e) for e in path.edges],
        "coherence": path.coherence,
        "target_divergence": path.target_divergence,
    }


def ranked_path_from_wire(data: Mapping[str, Any]) -> RankedPath:
    return RankedPath(
        nodes=list(data["nodes"]),
        edges=[edge_from_wire(e) for e in data["edges"]],
        coherence=float(data["coherence"]),
        target_divergence=float(data["target_divergence"]),
    )


def trend_rows_to_wire(rows: Sequence[Tuple[Any, ...]]) -> List[List[Any]]:
    return [list(row) for row in rows]


def trend_rows_from_wire(data: Sequence[Sequence[Any]]) -> List[Tuple[Any, ...]]:
    return [
        (float(ts), str(s), str(p), str(o), float(conf))
        for ts, s, p, o, conf in data
    ]


def statistics_to_wire(stats: GraphStatistics) -> Dict[str, Any]:
    return {
        "num_entities": stats.num_entities,
        "num_facts": stats.num_facts,
        "curated_facts": stats.curated_facts,
        "extracted_facts": stats.extracted_facts,
        "confidence_histogram": list(stats.confidence_histogram),
        "facts_per_source": dict(stats.facts_per_source),
        "facts_per_predicate": dict(stats.facts_per_predicate),
        "entities_per_type": dict(stats.entities_per_type),
        "mean_extracted_confidence": stats.mean_extracted_confidence,
        "central_entities": [list(pair) for pair in stats.central_entities],
    }


def statistics_from_wire(data: Mapping[str, Any]) -> GraphStatistics:
    return GraphStatistics(
        num_entities=int(data["num_entities"]),
        num_facts=int(data["num_facts"]),
        curated_facts=int(data["curated_facts"]),
        extracted_facts=int(data["extracted_facts"]),
        confidence_histogram=[int(c) for c in data["confidence_histogram"]],
        facts_per_source=dict(data["facts_per_source"]),
        facts_per_predicate=dict(data["facts_per_predicate"]),
        entities_per_type=dict(data["entities_per_type"]),
        mean_extracted_confidence=float(data["mean_extracted_confidence"]),
        central_entities=[
            (str(e), float(r)) for e, r in data["central_entities"]
        ],
    )


def ingest_result_to_wire(result: IngestResult) -> Dict[str, Any]:
    return {
        "doc_id": result.doc_id,
        "raw_triples": result.raw_triples,
        "accepted": result.accepted,
        "rejected_mapping": dict(result.rejected_mapping),
        "rejected_confidence": result.rejected_confidence,
        "accepted_triples": [list(t) for t in result.accepted_triples],
    }


def ingest_result_from_wire(data: Mapping[str, Any]) -> IngestResult:
    return IngestResult(
        doc_id=str(data["doc_id"]),
        raw_triples=int(data["raw_triples"]),
        accepted=int(data["accepted"]),
        rejected_mapping=Counter(dict(data["rejected_mapping"])),
        rejected_confidence=int(data["rejected_confidence"]),
        accepted_triples=[
            (str(s), str(p), str(o), float(conf))
            for s, p, o, conf in data["accepted_triples"]
        ],
    )


# ---------------------------------------------------------------------------
# compute envelopes (the /v1/shard/compute superstep protocol)
# ---------------------------------------------------------------------------


def compute_request_to_wire(request: ComputeRequest) -> Dict[str, Any]:
    """JSON-safe form of one superstep request."""
    return request.to_wire()


def compute_request_from_wire(data: Mapping[str, Any]) -> ComputeRequest:
    return ComputeRequest.from_wire(data)


def compute_response_to_wire(response: ComputeResponse) -> Dict[str, Any]:
    """JSON-safe form of one superstep response."""
    return response.to_wire()


def compute_response_from_wire(data: Mapping[str, Any]) -> ComputeResponse:
    return ComputeResponse.from_wire(data)


# ---------------------------------------------------------------------------
# analytics payloads
# ---------------------------------------------------------------------------


def pagerank_to_wire(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """``{"ranks": [[entity, score], ...], "num_vertices": n}`` —
    scores are pre-rounded by the engine so both sides compare equal."""
    return {
        "ranks": [[str(e), float(s)] for e, s in payload["ranks"]],
        "num_vertices": int(payload["num_vertices"]),
    }


def pagerank_from_wire(data: Mapping[str, Any]) -> Dict[str, Any]:
    return pagerank_to_wire(data)


def components_to_wire(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """``{"components": [[member, ...], ...], "num_components": n}``."""
    return {
        "components": [
            [str(m) for m in members] for members in payload["components"]
        ],
        "num_components": int(payload["num_components"]),
    }


def components_from_wire(data: Mapping[str, Any]) -> Dict[str, Any]:
    return components_to_wire(data)


def centrality_to_wire(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """``{"metric": name, "ranks": [[entity, score], ...]}``."""
    return {
        "metric": str(payload["metric"]),
        "ranks": [[str(e), float(s)] for e, s in payload["ranks"]],
    }


def centrality_from_wire(data: Mapping[str, Any]) -> Dict[str, Any]:
    return centrality_to_wire(data)


# ---------------------------------------------------------------------------
# kind dispatch
# ---------------------------------------------------------------------------


def encode_payload(kind: str, payload: Any) -> Dict[str, Any]:
    """Encode a query/ingest payload as a JSON-safe dict, by result kind."""
    if kind == "entity":
        return entity_summary_to_wire(payload)
    if kind == "trending":
        return window_report_to_wire(payload)
    if kind in ("relationship", "explanatory"):
        return {"paths": [ranked_path_to_wire(p) for p in payload]}
    if kind == "entity-trend":
        return {"rows": trend_rows_to_wire(payload)}
    if kind == "pattern":
        return {"matches": [dict(m) for m in payload]}
    if kind == "statistics":
        return statistics_to_wire(payload)
    if kind == "ingest":
        return ingest_result_to_wire(payload)
    if kind == "pagerank":
        return pagerank_to_wire(payload)
    if kind == "components":
        return components_to_wire(payload)
    if kind == "centrality":
        return centrality_to_wire(payload)
    raise QueryError(f"no wire codec for result kind {kind!r}")


def decode_payload(kind: str, data: Mapping[str, Any]) -> Any:
    """Inverse of :func:`encode_payload`: wire dict -> payload object."""
    if kind == "entity":
        return entity_summary_from_wire(data)
    if kind == "trending":
        return window_report_from_wire(data)
    if kind in ("relationship", "explanatory"):
        return [ranked_path_from_wire(p) for p in data["paths"]]
    if kind == "entity-trend":
        return trend_rows_from_wire(data["rows"])
    if kind == "pattern":
        return [dict(m) for m in data["matches"]]
    if kind == "statistics":
        return statistics_from_wire(data)
    if kind == "ingest":
        return ingest_result_from_wire(data)
    if kind == "pagerank":
        return pagerank_from_wire(data)
    if kind == "components":
        return components_from_wire(data)
    if kind == "centrality":
        return centrality_from_wire(data)
    raise QueryError(f"no wire codec for result kind {kind!r}")


# ---------------------------------------------------------------------------
# standing-query rows
# ---------------------------------------------------------------------------


def row_key(row: Mapping[str, Any]) -> str:
    """Canonical identity key for a standing-query row.

    Public because delta consumers (tests, benchmarks, clients
    replaying added/removed frames) must key rows exactly the way
    :func:`delta_rows` does, or replay comparisons silently mis-pair.
    """
    return json.dumps(row, sort_keys=True, default=str)


_row_key = row_key


def key_of_row(kind: str, row: Mapping[str, Any]) -> str:
    """Reconstruct the :func:`delta_rows` identity key from a row dict.

    Delta consumers that re-key rows they received over the wire —
    replaying added/removed frames, or merging per-shard row maps in the
    scatter-gather router — must reproduce the exact keying
    :func:`delta_rows` used, including the kinds whose key is *not* the
    row content (trending rows are keyed by pattern so support changes
    upsert; path rows by node sequence so coherence changes upsert).
    """
    if kind == "trending":
        return str(row["pattern"])
    if kind in ("relationship", "explanatory"):
        return " -> ".join(str(n) for n in row["nodes"])
    return row_key(row)


def delta_rows(kind: str, payload: Any) -> Dict[str, Dict[str, Any]]:
    """Flatten a payload into ``key -> row`` for standing-query diffing.

    Keys are chosen so a row's *identity* survives refreshes while its
    observable content is part of the row dict:

    - ``trending``: keyed by the pattern's canonical description, so a
      support change shows up as that row re-appearing in ``added`` with
      the new support (upsert), not as an unrelated add/remove pair.
    - path kinds: keyed by the node sequence.
    - ``entity`` / ``entity-trend`` / ``pattern``: the row content is
      its own identity (a fact either is in the result set or is not).
    """
    rows: Dict[str, Dict[str, Any]] = {}
    if kind == "trending":
        for pattern, support in payload:
            rows[pattern.describe()] = {
                "pattern": pattern.describe(),
                "support": support,
            }
    elif kind in ("relationship", "explanatory"):
        for path in payload:
            key = " -> ".join(str(n) for n in path.nodes)
            rows[key] = {
                "nodes": [str(n) for n in path.nodes],
                "coherence": round(path.coherence, 6),
            }
    elif kind == "entity":
        for s, p, o, conf, curated in payload.facts:
            row = {
                "subject": s,
                "predicate": p,
                "object": o,
                "confidence": round(conf, 6),
                "curated": curated,
            }
            rows[_row_key(row)] = row
    elif kind == "entity-trend":
        for ts, s, p, o, conf in payload:
            row = {
                "timestamp": ts,
                "subject": s,
                "predicate": p,
                "object": o,
                "confidence": round(conf, 6),
            }
            rows[_row_key(row)] = row
    elif kind == "pattern":
        for bindings in payload:
            row = {str(k): str(v) for k, v in bindings.items()}
            rows[_row_key(row)] = row
    else:
        raise QueryError(f"result kind {kind!r} does not support standing queries")
    return rows
