"""The versioned service API: the single supported entry point.

The ad-hoc trio of :class:`~repro.core.pipeline.Nous` methods,
:class:`~repro.query.engine.QueryEngine` and the argparse CLI is wrapped
behind a stable request/response contract (paper §4: "query execution
using both web and command line interface" over a *dynamic* KG):

- **Typed envelopes** (:mod:`repro.api.envelopes`): frozen
  :class:`IngestRequest` / :class:`QueryRequest` inputs and an
  :class:`ApiResponse` output with a structured error taxonomy mapped
  from the :class:`~repro.errors.ReproError` hierarchy.
- **Wire codecs** (:mod:`repro.api.wire`): ``to_dict`` / ``from_dict``
  JSON codecs for every query payload, so results survive process
  boundaries.
- **Service facade** (:mod:`repro.api.service`): :class:`NousService`
  owns construction *and* querying, funnels single-document callers
  through an async micro-batching ingestion queue (the amortised
  ``ingest_batch`` hot path), and supports **standing queries** —
  continuous queries re-evaluated after every drain that yield delta
  results as the KG changes underneath them.
- **HTTP gateway** (:mod:`repro.api.http`): ``NousGateway`` serves the
  same envelopes over stdlib HTTP — ingest/query/stats endpoints plus
  NDJSON streaming push for standing-query deltas — and
  ``ClientSession`` consumes them with the same codecs (see
  ``docs/API.md``).  Imported lazily; ``from repro.api.http import ...``
  when you need the network half.
- **Multi-tenant namespaces** (:mod:`repro.api.tenancy`):
  :class:`TenantRegistry` maps tenant ids to isolated services behind
  one gateway — per-tenant KGs, quotas and data directories (see
  ``docs/TENANCY.md``).
"""

from repro.api.base import (
    ServiceCore,
    ServiceLike,
    ServiceTelemetry,
    ShardLike,
    SubscriptionLike,
    TenantRegistryLike,
)
from repro.api.cluster import (
    ClusterSubscription,
    DocumentRouter,
    ShardedNousService,
)
from repro.api.envelopes import (
    API_VERSION,
    ApiError,
    ApiResponse,
    IngestRequest,
    QueryRequest,
    error_from_exception,
    normalize_error_message,
)
from repro.api.service import (
    IngestTicket,
    NousService,
    ServiceConfig,
    StandingQueryUpdate,
    StreamView,
    Subscription,
)
from repro.api.tenancy import DEFAULT_TENANT, TenantRegistry, TenantSpec
from repro.api.wire import decode_payload, delta_rows, encode_payload, key_of_row

__all__ = [
    "API_VERSION",
    "ApiError",
    "ApiResponse",
    "IngestRequest",
    "QueryRequest",
    "error_from_exception",
    "normalize_error_message",
    "NousService",
    "ServiceConfig",
    "ServiceCore",
    "ServiceLike",
    "ServiceTelemetry",
    "ShardLike",
    "SubscriptionLike",
    "TenantRegistryLike",
    "DEFAULT_TENANT",
    "TenantRegistry",
    "TenantSpec",
    "ShardedNousService",
    "ClusterSubscription",
    "DocumentRouter",
    "IngestTicket",
    "Subscription",
    "StandingQueryUpdate",
    "StreamView",
    "encode_payload",
    "decode_payload",
    "delta_rows",
    "key_of_row",
]
