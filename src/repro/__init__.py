"""repro — a from-scratch reproduction of NOUS (ICDE 2017).

NOUS: Construction and Querying of Dynamic Knowledge Graphs
(Choudhury et al., ICDE 2017, arXiv:1606.02314).

Quickstart (the versioned service API is the supported entry point)::

    from repro import NousService, build_drone_kb, generate_corpus, CorpusConfig

    kb = build_drone_kb()
    articles = generate_corpus(kb, CorpusConfig(n_articles=100))
    with NousService(kb=kb) as service:
        service.submit_many(articles)   # async micro-batching queue
        service.flush()
        print(service.query("tell me about DJI").rendered)
        print(service.query("show trending patterns").rendered)
"""

from repro.api.envelopes import (
    ApiError,
    ApiResponse,
    IngestRequest,
    QueryRequest,
)
from repro.api.cluster import ShardedNousService
from repro.api.service import (
    IngestTicket,
    NousService,
    ServiceConfig,
    StandingQueryUpdate,
    Subscription,
)
from repro.core.pipeline import IngestResult, Nous, NousConfig
from repro.core.statistics import GraphStatistics, compute_statistics
from repro.data.corpus import CorpusConfig, generate_corpus, stream_corpus
from repro.data.descriptions import generate_descriptions
from repro.kb.drone_kb import build_drone_kb
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.ontology import Ontology
from repro.kb.triples import Triple
from repro.query.engine import QueryEngine, QueryResult
from repro.query.parser import parse_query

__version__ = "1.0.0"

__all__ = [
    "Nous",
    "NousConfig",
    "IngestResult",
    "NousService",
    "ShardedNousService",
    "ServiceConfig",
    "IngestTicket",
    "Subscription",
    "StandingQueryUpdate",
    "ApiError",
    "ApiResponse",
    "IngestRequest",
    "QueryRequest",
    "GraphStatistics",
    "compute_statistics",
    "KnowledgeBase",
    "Ontology",
    "Triple",
    "build_drone_kb",
    "CorpusConfig",
    "generate_corpus",
    "stream_corpus",
    "generate_descriptions",
    "QueryEngine",
    "QueryResult",
    "parse_query",
    "__version__",
]
