"""Distributed exact pattern mining over the shard cluster.

The scatter merge sums per-shard MNI support tables, which is exact only
while every embedding of a pattern lives on one shard — an embedding
whose edges were extracted on *different* shards is invisible to every
local miner, so merged trending reports silently undercount as the
cluster grows.  :class:`DistributedMiner` closes that gap with a
bulk-synchronous ``mine_embeddings`` job:

1. **census** — each shard reports its window vertex set and miner
   settings.  A vertex on >= 2 shards is a *boundary* vertex: only
   there can a cross-shard embedding connect.
2. **local** — each shard ships its aggregate support state (embedding
   counts + per-variable distinct vertex images, maintained
   incrementally by :class:`~repro.mining.streaming.StreamingPatternMiner`;
   every pure-local embedding is already counted exactly once) plus the
   window edges incident to the boundary, tagged with shard-local edge
   ids.
3. **expand** — rounds to a fixpoint: the coordinator grows partial
   cross-shard embeddings from the pooled edges and requests exactly
   the frontier vertices whose local continuations it still needs;
   ``skip`` lists of already-shipped edge ids keep every window edge
   crossing the wire at most once per job.
4. **enumerate + merge** — connected pooled subsets with edges from
   >= 2 shards (distinct facts, <= ``max_edges``) are the mixed
   embeddings; each is counted exactly once here and never by a shard.
   Per-pattern variable images are unioned across shards and the mixed
   pass, so ``min`` over variables of the union sizes is the monolith's
   MNI support — exact, not a lower bound.

Every embedding of the union window is either pure-local (all edges on
the shard that extracted them — window edges are never replicated) or
mixed, so the two sources partition the embedding set: supports *and*
embedding counts match a monolith holding the same window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.compute.coordinator import ComputeCoordinator
from repro.compute.protocol import (
    MINE_PHASE_CENSUS,
    MINE_PHASE_EXPAND,
    MINE_PHASE_LOCAL,
    OP_MINE_EMBEDDINGS,
    instance_edge_from_payload,
    support_entry_from_payload,
)
from repro.errors import ClusterError
from repro.mining.patterns import InstanceEdge, Pattern, canonicalize

# A pooled window edge is identified by (shard index, shard-local edge
# id) — unique across the job because each shard's miner ids are unique
# within its window.
PoolKey = Tuple[int, int]


@dataclass(frozen=True)
class MiningOutcome:
    """The merged result of one distributed enumeration job.

    Attributes:
        supports: Exact MNI support per pattern over the union window.
        embeddings: Exact embedding count per pattern (every embedding
            counted by exactly one source: its home shard or the mixed
            pass).
        min_support: The shards' shared frequency threshold.
        window_edges: Total edges across the shard windows.
        last_timestamp: Max stream clock across shards.
        kg_versions: Per-shard KG version stamps echoed by the job's
            rounds (the composite stamp for the merged report).
    """

    supports: Dict[Pattern, int]
    embeddings: Dict[Pattern, int]
    min_support: int
    window_edges: int
    last_timestamp: float
    kg_versions: Tuple[int, ...]


class DistributedMiner:
    """Run the exact cross-shard embedding enumeration as one job.

    Args:
        coordinator: The superstep coordinator to drive.  Rounds are
            stateless, so the coordinator's recover-and-retry semantics
            (durable clusters self-heal a dead worker and re-run the
            round verbatim) apply unchanged.
    """

    def __init__(self, coordinator: ComputeCoordinator) -> None:
        self.coordinator = coordinator

    # ------------------------------------------------------------------
    def mine(self) -> MiningOutcome:
        """Execute census/local/expand rounds and merge exact supports."""
        coord = self.coordinator
        num_shards = coord.num_shards
        if num_shards == 0:
            raise ClusterError("cannot mine over zero shards")
        coord.begin_job()

        census = coord._round(
            OP_MINE_EMBEDDINGS,
            {i: {"phase": MINE_PHASE_CENSUS} for i in range(num_shards)},
        )
        vertex_sets: List[Set[str]] = [
            {str(v) for v in census[i]["vertices"]} for i in range(num_shards)
        ]
        min_support = int(census[0]["min_support"])
        max_edges = int(census[0]["max_edges"])
        window_edges = sum(int(census[i]["window_edges"]) for i in range(num_shards))
        last_timestamp = max(
            float(census[i]["last_timestamp"]) for i in range(num_shards)
        )

        owners: Dict[str, int] = {}
        boundary: Set[str] = set()
        for vertices in vertex_sets:
            for vertex in vertices:
                owners[vertex] = owners.get(vertex, 0) + 1
                if owners[vertex] >= 2:
                    boundary.add(vertex)

        local = coord._round(
            OP_MINE_EMBEDDINGS,
            {
                i: {
                    "phase": MINE_PHASE_LOCAL,
                    "boundary": sorted(boundary & vertex_sets[i]),
                }
                for i in range(num_shards)
            },
        )

        # Union of per-shard aggregate state: embedding counts sum, and
        # variable images union (cross-shard copies of one fact bind the
        # same vertices, so set union is MNI-neutral by construction).
        embeddings: Dict[Pattern, int] = {}
        images: Dict[Pattern, Dict[int, Set[str]]] = {}
        pool: Dict[PoolKey, InstanceEdge] = {}
        shipped: List[Set[int]] = [set() for _ in range(num_shards)]
        for index in range(num_shards):
            for entry in local[index]["patterns"]:
                pattern, count, entry_images = support_entry_from_payload(entry)
                embeddings[pattern] = embeddings.get(pattern, 0) + count
                target = images.setdefault(pattern, {})
                for var, nodes in entry_images.items():
                    target.setdefault(var, set()).update(nodes)
            for payload in local[index]["edges"]:
                eid, edge = instance_edge_from_payload(payload)
                pool[(index, eid)] = edge
                shipped[index].add(eid)

        self._expand_to_fixpoint(
            pool, shipped, vertex_sets, boundary, max_edges
        )

        # Mixed embeddings: connected pooled subsets spanning >= 2
        # shards.  Pure-local subsets also appear in the pool (boundary
        # edges of one shard connect to each other too) but their home
        # miner already counted them, so the span filter is what makes
        # the partition exact.
        incident, fact_of = _pool_indexes(pool)
        for subset in _connected_subsets(pool, incident, fact_of, max_edges):
            if len({key[0] for key in subset}) < 2:
                continue
            edges = [pool[key] for key in sorted(subset)]
            pattern, mapping = canonicalize(edges)
            embeddings[pattern] = embeddings.get(pattern, 0) + 1
            target = images.setdefault(pattern, {})
            for node, var in mapping.items():
                target.setdefault(var, set()).add(str(node))

        supports: Dict[Pattern, int] = {}
        for pattern, count in embeddings.items():
            if count <= 0:
                continue
            variables = pattern.variables()
            if not variables:
                continue
            pattern_images = images.get(pattern, {})
            supports[pattern] = min(
                len(pattern_images.get(var, ())) for var in variables
            )

        versions = coord.round_kg_versions()
        return MiningOutcome(
            supports=supports,
            embeddings=embeddings,
            min_support=min_support,
            window_edges=window_edges,
            last_timestamp=last_timestamp,
            kg_versions=tuple(
                versions.get(i, 0) for i in range(num_shards)
            ),
        )

    # ------------------------------------------------------------------
    def _expand_to_fixpoint(
        self,
        pool: Dict[PoolKey, InstanceEdge],
        shipped: List[Set[int]],
        vertex_sets: List[Set[str]],
        boundary: Set[str],
        max_edges: int,
    ) -> None:
        """Fetch the intra-shard continuations mixed embeddings need.

        A mixed subset may contain edges not incident to any boundary
        vertex (e.g. ``A-B, B-C`` on shard 0 with ``C-D`` on shard 1:
        only ``C`` is boundary, yet ``A-B`` participates).  Each round
        requests, per shard, the non-boundary vertices of partial pooled
        subsets that already contain another shard's edge and can still
        grow — every edge incident to a boundary vertex was shipped in
        the local round, so boundary vertices are never re-requested.
        Terminates in at most ``max_edges`` rounds (a growable partial
        subset gains one hop per round).
        """
        requested: List[Set[str]] = [set() for _ in range(len(vertex_sets))]
        for _ in range(max_edges):
            incident, fact_of = _pool_indexes(pool)
            partials: List[Tuple[FrozenSet[PoolKey], Set[str]]] = []
            for subset in _connected_subsets(
                pool, incident, fact_of, max_edges - 1
            ):
                nodes: Set[str] = set()
                for key in subset:
                    edge = pool[key]
                    nodes.add(str(edge.src))
                    nodes.add(str(edge.dst))
                partials.append((subset, nodes))
            params_by_shard: Dict[int, Dict[str, Any]] = {}
            for index in range(len(vertex_sets)):
                frontier: Set[str] = set()
                for subset, nodes in partials:
                    if all(key[0] == index for key in subset):
                        continue
                    for node in nodes:
                        if node in boundary or node in requested[index]:
                            continue
                        if node in vertex_sets[index]:
                            frontier.add(node)
                if frontier:
                    params_by_shard[index] = {
                        "phase": MINE_PHASE_EXPAND,
                        "vertices": sorted(frontier),
                        "skip": sorted(shipped[index]),
                    }
            if not params_by_shard:
                return
            results = self.coordinator._round(
                OP_MINE_EMBEDDINGS, params_by_shard
            )
            grew = False
            for index, result in results.items():
                requested[index].update(params_by_shard[index]["vertices"])
                for payload in result["edges"]:
                    eid, edge = instance_edge_from_payload(payload)
                    pool[(index, eid)] = edge
                    shipped[index].add(eid)
                    grew = True
            if not grew:
                return


# ---------------------------------------------------------------------------
# pooled-subset enumeration (coordinator side)
# ---------------------------------------------------------------------------


def _pool_indexes(
    pool: Dict[PoolKey, InstanceEdge],
) -> Tuple[Dict[str, List[PoolKey]], Dict[PoolKey, Tuple[str, str, str]]]:
    """Incidence and fact-identity indexes over the pooled edges."""
    incident: Dict[str, List[PoolKey]] = {}
    fact_of: Dict[PoolKey, Tuple[str, str, str]] = {}
    for key in sorted(pool):
        edge = pool[key]
        incident.setdefault(str(edge.src), []).append(key)
        if str(edge.dst) != str(edge.src):
            incident.setdefault(str(edge.dst), []).append(key)
        fact_of[key] = (str(edge.src), str(edge.dst), edge.predicate)
    return incident, fact_of


def _connected_subsets(
    pool: Dict[PoolKey, InstanceEdge],
    incident: Dict[str, List[PoolKey]],
    fact_of: Dict[PoolKey, Tuple[str, str, str]],
    max_size: int,
) -> Iterator[FrozenSet[PoolKey]]:
    """All connected subsets of pooled edges with <= ``max_size`` edges.

    Each subset is yielded exactly once (its minimum key acts as the
    seed; extensions only use larger keys).  The distinct-fact rule of
    :meth:`StreamingPatternMiner._connected_subsets` is replicated: two
    window instances of the same ``(s, p, o)`` never pair up, so the
    mixed enumeration obeys the same embedding definition as the local
    miners.
    """
    if max_size < 1:
        return
    for seed in sorted(pool):
        seed_edge = pool[seed]
        start = frozenset([seed])
        seen: Set[FrozenSet[PoolKey]] = {start}
        stack: List[Tuple[FrozenSet[PoolKey], Set[str]]] = [
            (start, {str(seed_edge.src), str(seed_edge.dst)})
        ]
        while stack:
            subset, nodes = stack.pop()
            yield subset
            if len(subset) >= max_size:
                continue
            facts = {fact_of[key] for key in subset}
            for node in nodes:
                for key in incident.get(node, ()):
                    if key <= seed or key in subset:
                        continue
                    if fact_of[key] in facts:
                        continue
                    extended = subset | {key}
                    if extended in seen:
                        continue
                    seen.add(extended)
                    edge = pool[key]
                    stack.append(
                        (extended, nodes | {str(edge.src), str(edge.dst)})
                    )
