"""Coherent cross-shard path search as distributed frontier expansion.

The monolith answers "why is X related to Y?" by beam-searching the
topic-annotated KG (:class:`~repro.qa.pathsearch.CoherentPathSearch`).
A sharded cluster used to answer the same question per shard and merge,
which makes any route whose edges live on *different* shards invisible.

:class:`DistributedPathSearch` closes that gap without shipping whole
partitions: the coordinator expands a frontier outward from the source
— one ``expand`` superstep per hop, each shard returning only its
*owned* edges incident to the frontier, each merged-graph edge crossing
the wire at most once per search — until the region covers everything
the beam could visit within ``max_hops`` (plus one ring of adjacency
for the look-ahead term).  The existing memoised
:class:`CoherentPathSearch` then runs unchanged over that region, with
topic vectors from an LDA fit over the *union* document set.  Because
the LDA fit depends only on the document set (sorted doc ids, seeded
rng) and the region contains every edge the monolith beam could
traverse, routes and their coherence scores match the monolith —
including routes that cross shard boundaries.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.compute.coordinator import ClusterGraphInfo, ComputeCoordinator
from repro.compute.protocol import OP_EXPAND, edge_from_payload
from repro.errors import QAError, VertexNotFoundError
from repro.graph.property_graph import PropertyGraph
from repro.qa.lda import LdaModel, LdaTopics
from repro.qa.pathsearch import CoherentPathSearch, RankedPath
from repro.qa.topics import assign_topic_vectors


class DistributedPathSearch:
    """Top-K coherent path search over a sharded knowledge graph.

    Args:
        coordinator: The compute coordinator driving the shard rounds.
        n_topics / lda_iterations / seed: LDA settings; must match the
            monolith's :class:`~repro.core.pipeline.NousConfig` for
            score-identical results.
        max_hops / beam_width: Search settings (same semantics as
            :class:`CoherentPathSearch`).
    """

    def __init__(
        self,
        coordinator: ComputeCoordinator,
        n_topics: int = 6,
        lda_iterations: int = 60,
        seed: int = 29,
        max_hops: int = 4,
        beam_width: int = 8,
    ) -> None:
        if max_hops < 1:
            raise QAError("max_hops must be >= 1")
        self.coordinator = coordinator
        self.n_topics = n_topics
        self.lda_iterations = lda_iterations
        self.seed = seed
        self.max_hops = max_hops
        self.beam_width = beam_width
        # The topic fit is a function of the union document set, which
        # only changes when some shard's KG moves — cache it on the
        # tuple of shard version stamps (the compute analogue of the
        # cluster's composite cache stamp).
        self._topics_cache: Optional[Tuple[Tuple[int, ...], LdaTopics]] = None

    # ------------------------------------------------------------------
    def resolve(self, mention: str) -> str:
        """Link one mention onto the cluster's entity space."""
        return self.coordinator.resolve([mention])[0]

    def top_k_paths(
        self,
        source: str,
        target: str,
        k: int = 3,
        relationship: Optional[str] = None,
    ) -> List[RankedPath]:
        """Find up to ``k`` coherent source->target paths cluster-wide.

        Raises:
            VertexNotFoundError: if either endpoint is not a vertex of
                the merged graph.
            QAError: if source equals target.
            ClusterError: if a shard dies mid-search and cannot be
                recovered (stateless rounds are retried once after the
                recover hook runs).
        """
        if source == target:
            raise QAError("source and target must differ")
        self.coordinator.begin_job()
        self.coordinator.stats.record_path_search()
        info = self.coordinator.graph_info(documents=True)
        known = set(info.vertices)
        for vertex in (source, target):
            if vertex not in known:
                raise VertexNotFoundError(vertex)
        topics = self._fit_topics(info)
        region = self._expand_region(source, info)
        if not region.has_vertex(target):
            # Target unreachable within the hop budget: keep the search
            # well-defined (it returns no paths, like the monolith).
            region.add_vertex(target)
        assign_topic_vectors(region, topics)
        search = CoherentPathSearch(
            region, max_hops=self.max_hops, beam_width=self.beam_width
        )
        return search.top_k_paths(source, target, k=k, relationship=relationship)

    # ------------------------------------------------------------------
    def _fit_topics(self, info: ClusterGraphInfo) -> LdaTopics:
        """LDA over the union document set, byte-identical to a monolith
        fit on the same entities + descriptions (the model sorts doc ids
        and seeds its rng, so shard order cannot leak in)."""
        if (
            self._topics_cache is not None
            and self._topics_cache[0] == info.kg_versions
        ):
            return self._topics_cache[1]
        documents = {
            entity: description or entity.replace("_", " ")
            for entity, description in info.documents.items()
        }
        model = LdaModel(
            n_topics=self.n_topics,
            n_iterations=self.lda_iterations,
            seed=self.seed,
        )
        topics = model.fit(documents)
        self._topics_cache = (info.kg_versions, topics)
        return topics

    def _expand_region(
        self, source: str, info: ClusterGraphInfo
    ) -> PropertyGraph:
        """BSP frontier expansion: the (max_hops + 1)-ball around the
        source, assembled from per-round owned-edge exchanges.

        The extra ring beyond ``max_hops`` exists so the beam's one-hop
        look-ahead sees the true neighbour sets of every candidate it
        scores; the beam itself never walks past ``max_hops``.
        """
        region = PropertyGraph()
        region.add_vertex(source)
        expanded: Set[str] = set()
        frontier = [source]
        for _ in range(self.max_hops + 1):
            if not frontier:
                break
            params_by_shard = {
                index: {
                    "vertices": list(frontier),
                    "skip": sorted(expanded),
                    "disown": info.disown[index],
                }
                for index in range(self.coordinator.num_shards)
            }
            results = self.coordinator._round(OP_EXPAND, params_by_shard)
            expanded.update(frontier)
            discovered: Set[str] = set()
            for index in sorted(results):
                for payload in results[index]["edges"]:
                    edge = edge_from_payload(payload)
                    region.add_edge(
                        edge["src"], edge["dst"], edge["label"], **edge["props"]
                    )
                    for endpoint in (edge["src"], edge["dst"]):
                        if endpoint not in expanded:
                            discovered.add(endpoint)
            frontier = sorted(discovered)
        return region
