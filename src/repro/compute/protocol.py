"""Compute envelope types and the edge-ownership rule.

One superstep of distributed graph compute is a single stateless
request/response pair: the coordinator sends a :class:`ComputeRequest`
(op name, the target shard's index and the cluster width, plus
op-specific params) and the shard answers with a
:class:`ComputeResponse`.  Shards keep **no job state** between steps —
every request carries everything the step needs — which is what makes a
crashed-and-recovered worker able to re-run any round verbatim.

Ops (``params`` / ``result`` contracts, all JSON-safe):

========== ============================================ =========================================
op         params                                       result
========== ============================================ =========================================
graph_info ``documents`` (bool)                         ``vertices``, ``extracted`` fact keys,
                                                        ``entities`` ([id, description], when
                                                        ``documents``)
degrees    ``disown``                                   owned ``out_deg`` / ``deg`` per vertex,
                                                        ``incident`` / ``srcs`` vertex lists
expand     ``vertices``, ``skip``, ``disown``           owned ``edges`` incident to the frontier
contrib    ``shares`` (src -> rank share), ``disown``   summed ``contrib`` per destination
min_labels ``labels`` (vertex -> label), ``disown``     min-neighbour-label ``messages``
resolve    ``mentions``                                 linked ``entities``
edge_dump  (none)                                       the shard's **entire** local graph — the
                                                        ship-everything baseline the benchmark
                                                        compares against
========== ============================================ =========================================

**Edge ownership.**  Curated facts are replicated into every shard's KB,
so a naive union of per-shard answers would count each curated edge N
times.  Ownership assigns every merged-graph edge to exactly one shard:
a curated edge belongs to ``stable_hash("s|p|o") % num_shards`` —
computable locally with zero exchange — and an extracted edge belongs to
the shard that extracted it, unless its key appears in the request's
``disown`` list (the coordinator detects cross-shard extraction
duplicates from ``graph_info`` and keeps the lowest shard index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.errors import ConfigError
from repro.graph.partition import _stable_hash
from repro.graph.property_graph import Edge
from repro.nlp.dates import SimpleDate, parse_date

OP_GRAPH_INFO = "graph_info"
OP_DEGREES = "degrees"
OP_EXPAND = "expand"
OP_CONTRIB = "contrib"
OP_MIN_LABELS = "min_labels"
OP_RESOLVE = "resolve"
OP_EDGE_DUMP = "edge_dump"

COMPUTE_OPS = (
    OP_GRAPH_INFO,
    OP_DEGREES,
    OP_EXPAND,
    OP_CONTRIB,
    OP_MIN_LABELS,
    OP_RESOLVE,
    OP_EDGE_DUMP,
)

FactKey = Tuple[str, str, str]


@dataclass(frozen=True)
class ComputeRequest:
    """One superstep request addressed to one shard.

    Attributes:
        op: One of :data:`COMPUTE_OPS`.
        shard: Index of the addressed shard in ``[0, num_shards)``.
        num_shards: Cluster width (the modulus of the ownership rule).
        params: Op-specific JSON-safe parameters.
    """

    op: str
    shard: int
    num_shards: int
    params: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "shard": self.shard,
            "num_shards": self.num_shards,
            "params": dict(self.params),
        }

    @staticmethod
    def from_wire(data: Mapping[str, Any]) -> "ComputeRequest":
        op = str(data["op"])
        if op not in COMPUTE_OPS:
            raise ConfigError(f"unknown compute op {op!r}")
        shard = int(data["shard"])
        num_shards = int(data["num_shards"])
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if not 0 <= shard < num_shards:
            raise ConfigError(
                f"shard index {shard} out of range for {num_shards} shards"
            )
        return ComputeRequest(
            op=op,
            shard=shard,
            num_shards=num_shards,
            params=dict(data.get("params") or {}),
        )


@dataclass(frozen=True)
class ComputeResponse:
    """One shard's answer to one superstep request.

    Attributes:
        op: Echo of the request op.
        shard: Echo of the addressed shard index.
        kg_version: The shard's KG version stamp at answer time.
        result: Op-specific JSON-safe result.
    """

    op: str
    shard: int
    kg_version: int
    result: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "shard": self.shard,
            "kg_version": self.kg_version,
            "result": dict(self.result),
        }

    @staticmethod
    def from_wire(data: Mapping[str, Any]) -> "ComputeResponse":
        op = str(data["op"])
        if op not in COMPUTE_OPS:
            raise ConfigError(f"unknown compute op {op!r}")
        return ComputeResponse(
            op=op,
            shard=int(data["shard"]),
            kg_version=int(data["kg_version"]),
            result=dict(data.get("result") or {}),
        )


# ---------------------------------------------------------------------------
# edge ownership
# ---------------------------------------------------------------------------


def edge_key(edge: Edge) -> FactKey:
    """The cross-shard identity of a KG edge: ``(src, label, dst)``."""
    return (str(edge.src), edge.label, str(edge.dst))


def owns_edge(
    edge: Edge, shard: int, num_shards: int, disown: FrozenSet[FactKey]
) -> bool:
    """Whether ``shard`` is the unique owner of ``edge`` in the merged graph.

    Curated edges (replicated everywhere) hash to one owner; extracted
    edges are owned where they were extracted unless the coordinator
    disowned this copy as a cross-shard duplicate.
    """
    key = edge_key(edge)
    if edge.props.get("curated"):
        return _stable_hash("|".join(key)) % num_shards == shard
    return key not in disown


def disown_sets(
    extracted_by_shard: List[List[FactKey]],
) -> List[List[List[str]]]:
    """Duplicate-extraction disown lists, one per shard.

    A fact key extracted on several shards is owned by the lowest shard
    index that has it; every other holder must skip its copy.  Returned
    in wire form (lists, sorted) so the coordinator can embed them in
    request params verbatim.
    """
    first_owner: Dict[FactKey, int] = {}
    for index, keys in enumerate(extracted_by_shard):
        for key in keys:
            first_owner.setdefault(key, index)
    out: List[List[List[str]]] = []
    for index, keys in enumerate(extracted_by_shard):
        dup = sorted({key for key in keys if first_owner[key] != index})
        out.append([list(key) for key in dup])
    return out


def disown_param(disown: Optional[List[List[str]]]) -> FrozenSet[FactKey]:
    """Parse a request's ``disown`` param into a key set."""
    return frozenset(
        (str(item[0]), str(item[1]), str(item[2])) for item in (disown or [])
    )


# ---------------------------------------------------------------------------
# edge payloads (compute sits below repro.api, so it carries its own
# minimal edge codec; dates use the same SimpleDate string form the KB
# parses)
# ---------------------------------------------------------------------------


def edge_payload(edge: Edge) -> Dict[str, Any]:
    """JSON-safe form of a KG edge for ``expand`` / ``edge_dump`` results."""
    props = dict(edge.props)
    date = props.get("date")
    if isinstance(date, SimpleDate):
        props["date"] = str(date)
    return {
        "src": str(edge.src),
        "dst": str(edge.dst),
        "label": edge.label,
        "props": props,
    }


def edge_from_payload(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Decode an :func:`edge_payload` dict (date parsed back).

    Returns the plain ``{src, dst, label, props}`` dict the coordinator
    feeds to :meth:`PropertyGraph.add_edge` — edge ids are graph-local
    and assigned on insertion.
    """
    props = dict(data["props"])
    date = props.get("date")
    if isinstance(date, str):
        props["date"] = parse_date(date)
    return {
        "src": str(data["src"]),
        "dst": str(data["dst"]),
        "label": str(data["label"]),
        "props": props,
    }
