"""Compute envelope types and the edge-ownership rule.

One superstep of distributed graph compute is a single stateless
request/response pair: the coordinator sends a :class:`ComputeRequest`
(op name, the target shard's index and the cluster width, plus
op-specific params) and the shard answers with a
:class:`ComputeResponse`.  Shards keep **no job state** between steps —
every request carries everything the step needs — which is what makes a
crashed-and-recovered worker able to re-run any round verbatim.

Ops (``params`` / ``result`` contracts, all JSON-safe):

=============== ============================================ =========================================
op              params                                       result
=============== ============================================ =========================================
graph_info      ``documents`` (bool)                         ``vertices``, ``extracted`` fact keys,
                                                             ``entities`` ([id, description], when
                                                             ``documents``)
degrees         ``disown``                                   owned ``out_deg`` / ``deg`` per vertex,
                                                             ``incident`` / ``srcs`` vertex lists
expand          ``vertices``, ``skip``, ``disown``           owned ``edges`` incident to the frontier
contrib         ``shares`` (src -> rank share), ``disown``   summed ``contrib`` per destination
min_labels      ``labels`` (vertex -> label), ``disown``     min-neighbour-label ``messages``
resolve         ``mentions``                                 linked ``entities``
edge_dump       (none)                                       the shard's **entire** local graph — the
                                                             ship-everything baseline the benchmark
                                                             compares against
mine_embeddings ``phase`` = ``census``                       window ``vertices``, miner settings
                                                             (``min_support``, ``max_edges``),
                                                             ``window_edges``, ``last_timestamp``
mine_embeddings ``phase`` = ``local``, ``boundary``          aggregate per-pattern ``patterns``
                                                             (pattern, embedding count, var images)
                                                             + window ``edges`` incident to the
                                                             boundary vertices
mine_embeddings ``phase`` = ``expand``, ``vertices``,        window ``edges`` incident to the
                ``skip`` (shipped edge ids)                  frontier, each shipped at most once
=============== ============================================ =========================================

Window edges are extracted-only and never replicated (each instance
lives on exactly the shard that ingested it), so ``mine_embeddings``
needs no ownership/disown machinery: the union of per-shard windows
*is* the merged window.

**Edge ownership.**  Curated facts are replicated into every shard's KB,
so a naive union of per-shard answers would count each curated edge N
times.  Ownership assigns every merged-graph edge to exactly one shard:
a curated edge belongs to ``stable_hash("s|p|o") % num_shards`` —
computable locally with zero exchange — and an extracted edge belongs to
the shard that extracted it, unless its key appears in the request's
``disown`` list (the coordinator detects cross-shard extraction
duplicates from ``graph_info`` and keeps the lowest shard index).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.graph.partition import _stable_hash
from repro.graph.property_graph import Edge
from repro.mining.patterns import InstanceEdge, Pattern, PatternEdge
from repro.nlp.dates import SimpleDate, parse_date

OP_GRAPH_INFO = "graph_info"
OP_DEGREES = "degrees"
OP_EXPAND = "expand"
OP_CONTRIB = "contrib"
OP_MIN_LABELS = "min_labels"
OP_RESOLVE = "resolve"
OP_EDGE_DUMP = "edge_dump"
OP_MINE_EMBEDDINGS = "mine_embeddings"

COMPUTE_OPS = (
    OP_GRAPH_INFO,
    OP_DEGREES,
    OP_EXPAND,
    OP_CONTRIB,
    OP_MIN_LABELS,
    OP_RESOLVE,
    OP_EDGE_DUMP,
    OP_MINE_EMBEDDINGS,
)

MINE_PHASE_CENSUS = "census"
MINE_PHASE_LOCAL = "local"
MINE_PHASE_EXPAND = "expand"

MINE_PHASES = (MINE_PHASE_CENSUS, MINE_PHASE_LOCAL, MINE_PHASE_EXPAND)

FactKey = Tuple[str, str, str]


@dataclass(frozen=True)
class ComputeRequest:
    """One superstep request addressed to one shard.

    Attributes:
        op: One of :data:`COMPUTE_OPS`.
        shard: Index of the addressed shard in ``[0, num_shards)``.
        num_shards: Cluster width (the modulus of the ownership rule).
        params: Op-specific JSON-safe parameters.
    """

    op: str
    shard: int
    num_shards: int
    params: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "shard": self.shard,
            "num_shards": self.num_shards,
            "params": dict(self.params),
        }

    @staticmethod
    def from_wire(data: Mapping[str, Any]) -> "ComputeRequest":
        op = str(data["op"])
        if op not in COMPUTE_OPS:
            raise ConfigError(f"unknown compute op {op!r}")
        shard = int(data["shard"])
        num_shards = int(data["num_shards"])
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        if not 0 <= shard < num_shards:
            raise ConfigError(
                f"shard index {shard} out of range for {num_shards} shards"
            )
        return ComputeRequest(
            op=op,
            shard=shard,
            num_shards=num_shards,
            params=dict(data.get("params") or {}),
        )


@dataclass(frozen=True)
class ComputeResponse:
    """One shard's answer to one superstep request.

    Attributes:
        op: Echo of the request op.
        shard: Echo of the addressed shard index.
        kg_version: The shard's KG version stamp at answer time.
        result: Op-specific JSON-safe result.
    """

    op: str
    shard: int
    kg_version: int
    result: Dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "shard": self.shard,
            "kg_version": self.kg_version,
            "result": dict(self.result),
        }

    @staticmethod
    def from_wire(data: Mapping[str, Any]) -> "ComputeResponse":
        op = str(data["op"])
        if op not in COMPUTE_OPS:
            raise ConfigError(f"unknown compute op {op!r}")
        return ComputeResponse(
            op=op,
            shard=int(data["shard"]),
            kg_version=int(data["kg_version"]),
            result=dict(data.get("result") or {}),
        )


# ---------------------------------------------------------------------------
# edge ownership
# ---------------------------------------------------------------------------


def edge_key(edge: Edge) -> FactKey:
    """The cross-shard identity of a KG edge: ``(src, label, dst)``."""
    return (str(edge.src), edge.label, str(edge.dst))


def owns_edge(
    edge: Edge, shard: int, num_shards: int, disown: FrozenSet[FactKey]
) -> bool:
    """Whether ``shard`` is the unique owner of ``edge`` in the merged graph.

    Curated edges (replicated everywhere) hash to one owner; extracted
    edges are owned where they were extracted unless the coordinator
    disowned this copy as a cross-shard duplicate.
    """
    key = edge_key(edge)
    if edge.props.get("curated"):
        return _stable_hash("|".join(key)) % num_shards == shard
    return key not in disown


def disown_sets(
    extracted_by_shard: List[List[FactKey]],
) -> List[List[List[str]]]:
    """Duplicate-extraction disown lists, one per shard.

    A fact key extracted on several shards is owned by the lowest shard
    index that has it; every other holder must skip its copy.  Returned
    in wire form (lists, sorted) so the coordinator can embed them in
    request params verbatim.
    """
    first_owner: Dict[FactKey, int] = {}
    for index, keys in enumerate(extracted_by_shard):
        for key in keys:
            first_owner.setdefault(key, index)
    out: List[List[List[str]]] = []
    for index, keys in enumerate(extracted_by_shard):
        dup = sorted({key for key in keys if first_owner[key] != index})
        out.append([list(key) for key in dup])
    return out


def disown_param(disown: Optional[List[List[str]]]) -> FrozenSet[FactKey]:
    """Parse a request's ``disown`` param into a key set."""
    return frozenset(
        (str(item[0]), str(item[1]), str(item[2])) for item in (disown or [])
    )


# ---------------------------------------------------------------------------
# edge payloads (compute sits below repro.api, so it carries its own
# minimal edge codec; dates use the same SimpleDate string form the KB
# parses)
# ---------------------------------------------------------------------------


def edge_payload(edge: Edge) -> Dict[str, Any]:
    """JSON-safe form of a KG edge for ``expand`` / ``edge_dump`` results."""
    props = dict(edge.props)
    date = props.get("date")
    if isinstance(date, SimpleDate):
        props["date"] = str(date)
    return {
        "src": str(edge.src),
        "dst": str(edge.dst),
        "label": edge.label,
        "props": props,
    }


def edge_from_payload(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Decode an :func:`edge_payload` dict (date parsed back).

    Returns the plain ``{src, dst, label, props}`` dict the coordinator
    feeds to :meth:`PropertyGraph.add_edge` — edge ids are graph-local
    and assigned on insertion.
    """
    props = dict(data["props"])
    date = props.get("date")
    if isinstance(date, str):
        props["date"] = parse_date(date)
    return {
        "src": str(data["src"]),
        "dst": str(data["dst"]),
        "label": str(data["label"]),
        "props": props,
    }


# ---------------------------------------------------------------------------
# mining payloads: typed window instance edges, canonical patterns and
# per-pattern aggregate support state (mine_embeddings op).  Same layering
# rule as the edge codec — repro.api's pattern wire form lives above this
# package, so the compute protocol carries its own.
# ---------------------------------------------------------------------------


def instance_edge_payload(eid: int, edge: InstanceEdge) -> Dict[str, Any]:
    """JSON-safe form of one window instance edge, tagged with the
    shard-local edge id that makes ``skip`` lists exact across rounds."""
    return {
        "eid": int(eid),
        "src": str(edge.src),
        "dst": str(edge.dst),
        "src_label": edge.src_label,
        "dst_label": edge.dst_label,
        "predicate": edge.predicate,
    }


def instance_edge_from_payload(
    data: Mapping[str, Any]
) -> Tuple[int, InstanceEdge]:
    """Decode an :func:`instance_edge_payload` dict."""
    return int(data["eid"]), InstanceEdge(
        src=str(data["src"]),
        dst=str(data["dst"]),
        src_label=str(data["src_label"]),
        dst_label=str(data["dst_label"]),
        predicate=str(data["predicate"]),
    )


def pattern_payload(pattern: Pattern) -> List[List[Any]]:
    """Canonical pattern as a list of ``[src, dst, src_label, dst_label,
    predicate]`` rows — edge order preserved (it *is* the canonical
    form, so re-sorting on decode would be a bug)."""
    return [
        [e.src, e.dst, e.src_label, e.dst_label, e.predicate]
        for e in pattern.edges
    ]


def pattern_from_payload(rows: Sequence[Sequence[Any]]) -> Pattern:
    """Decode a :func:`pattern_payload` list back to the canonical form."""
    return Pattern(
        edges=tuple(
            PatternEdge(
                src=int(row[0]),
                dst=int(row[1]),
                src_label=str(row[2]),
                dst_label=str(row[3]),
                predicate=str(row[4]),
            )
            for row in rows
        )
    )


def support_entry_payload(
    pattern: Pattern, embeddings: int, images: Mapping[int, Sequence[Any]]
) -> Dict[str, Any]:
    """One pattern's aggregate support state for the ``local`` phase.

    ``images`` maps canonical variables to the distinct vertices bound
    there (JSON objects key on strings, so variables stringify on the
    wire and parse back in :func:`support_entry_from_payload`).
    """
    return {
        "pattern": pattern_payload(pattern),
        "embeddings": int(embeddings),
        "images": {
            str(var): [str(node) for node in images[var]]
            for var in sorted(images)
        },
    }


def support_entry_from_payload(
    data: Mapping[str, Any]
) -> Tuple[Pattern, int, Dict[int, List[str]]]:
    """Decode a :func:`support_entry_payload` dict."""
    images = {
        int(var): [str(node) for node in nodes]
        for var, nodes in dict(data["images"]).items()
    }
    return (
        pattern_from_payload(data["pattern"]),
        int(data["embeddings"]),
        images,
    )
