"""Router-side coordinator for bulk-synchronous compute over shards.

The coordinator generalises :func:`repro.graph.pregel.pregel` to a
cluster: vertex state lives here, the per-partition edge scans run on
the shards (one :class:`~repro.compute.protocol.ComputeRequest` per
shard per superstep), and only frontier/boundary-vertex messages cross
the wire each round.  Analytics jobs (PageRank, connected components,
degree centrality) mirror the single-graph reference implementations in
:mod:`repro.graph.algorithms` exactly, so a cluster of N shards and a
monolith holding the same facts agree on results.

Failure semantics (dead worker mid-superstep): every shard call that
raises :class:`~repro.errors.ClusterError` first invokes the optional
``recover`` hook (the cluster's ``data_dir`` self-heal) and retries the
step once — safe because steps are stateless — and otherwise propagates
the structured error instead of hanging the round.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.compute.protocol import (
    OP_CONTRIB,
    OP_DEGREES,
    OP_EDGE_DUMP,
    OP_EXPAND,
    OP_GRAPH_INFO,
    OP_MIN_LABELS,
    OP_MINE_EMBEDDINGS,
    OP_RESOLVE,
    ComputeRequest,
    ComputeResponse,
    disown_sets,
)
from repro.errors import ClusterError
from repro.graph.algorithms import _order_key

if TYPE_CHECKING:  # pragma: no cover - layering guard (typing only):
    # repro.compute sits below repro.api; the ShardLike protocol is a
    # structural type, so importing it at runtime would invert the
    # layering (repro.api.__init__ pulls in the whole service stack).
    from repro.api.base import ShardLike


class ComputeStats:
    """Cross-job communication counters, surfaced under ``/v1/stats``.

    Shared by every coordinator a cluster creates; all mutation goes
    through the record methods, which lock, so concurrent jobs cannot
    tear the counters.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.jobs = 0
        self.supersteps = 0
        self.messages = 0
        self.cross_shard_bytes = 0
        self.path_searches = 0
        self.last_messages_per_step: List[int] = []

    def start_job(self) -> None:
        with self._lock:
            self.jobs += 1
            self.last_messages_per_step = []

    def record_round(self, messages: int, nbytes: int) -> None:
        with self._lock:
            self.supersteps += 1
            self.messages += messages
            self.cross_shard_bytes += nbytes
            self.last_messages_per_step.append(messages)

    def record_step(self, messages: int, nbytes: int) -> None:
        """A single out-of-round exchange (e.g. mention resolution)."""
        with self._lock:
            self.messages += messages
            self.cross_shard_bytes += nbytes

    def record_path_search(self) -> None:
        with self._lock:
            self.path_searches += 1

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "jobs": self.jobs,
                "supersteps": self.supersteps,
                "messages": self.messages,
                "cross_shard_bytes": self.cross_shard_bytes,
                "path_searches": self.path_searches,
                "last_messages_per_step": list(self.last_messages_per_step),
            }


@dataclass(frozen=True)
class ClusterGraphInfo:
    """Round-0 census of the merged graph.

    Attributes:
        vertices: Sorted union of every shard's graph vertices.
        disown: Per-shard duplicate-extraction disown lists (wire form).
        documents: Entity -> description over the union of shard KBs
            (first non-empty description by shard order; empty unless
            requested with ``documents=True``).
        kg_versions: Per-shard KG version stamps at census time — the
            compute analogue of the composite cache stamp.
    """

    vertices: List[str]
    disown: List[List[List[str]]]
    documents: Dict[str, str]
    kg_versions: Tuple[int, ...]


@dataclass(frozen=True)
class ClusterDegrees:
    """Owned degree census (analytics jobs only).

    Attributes:
        out_deg / deg: Merged-graph out-degree / total degree per vertex.
        srcs_by_shard: Vertices with >= 1 owned out-edge, per shard —
            the only vertices whose rank shares that shard needs.
        incident_by_shard: Vertices with >= 1 owned incident edge, per
            shard — the only labels that shard needs.
    """

    out_deg: Dict[str, int]
    deg: Dict[str, int]
    srcs_by_shard: List[List[str]]
    incident_by_shard: List[List[str]]


class ComputeCoordinator:
    """Drive bulk-synchronous compute jobs across a shard cluster.

    Args:
        shards: The shard surfaces (in-process services or remote
            clients); indexed by position.
        executor: Optional pool for fanning one round out concurrently;
            rounds run sequentially when omitted.
        recover: Optional self-heal hook invoked when a shard call
            raises :class:`ClusterError`; after it returns the step is
            retried once.  Without a hook the error propagates.
        on_round: Test/observability hook called with the job-local
            round ordinal after every completed round (the
            fault-injection seam for killing workers *between* rounds).
        stats: Shared counters; a private instance when omitted.
    """

    def __init__(
        self,
        shards: Sequence["ShardLike"],
        executor: Optional[ThreadPoolExecutor] = None,
        recover: Optional[Callable[[], None]] = None,
        on_round: Optional[Callable[[int], None]] = None,
        stats: Optional[ComputeStats] = None,
    ) -> None:
        self.shards = list(shards)
        self.num_shards = len(self.shards)
        self.executor = executor
        self.recover = recover
        self.on_round = on_round
        self.stats = stats if stats is not None else ComputeStats()
        self._recover_lock = threading.Lock()
        self._job_round = 0
        self._round_kg_versions: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # wire plumbing
    # ------------------------------------------------------------------
    def _step(
        self, index: int, op: str, params: Dict[str, Any]
    ) -> Tuple[ComputeResponse, int]:
        """One stateless shard call; returns (response, bytes on wire).

        On :class:`ClusterError` the recover hook (when present) runs
        once and the call is retried; a second failure propagates.
        """
        request = ComputeRequest(
            op=op, shard=index, num_shards=self.num_shards, params=params
        ).to_wire()
        try:
            raw = self.shards[index].compute_step(request)
        except ClusterError:
            if self.recover is None:
                raise
            with self._recover_lock:
                self.recover()
            raw = self.shards[index].compute_step(request)
        nbytes = len(json.dumps(request, sort_keys=True)) + len(
            json.dumps(raw, sort_keys=True)
        )
        return ComputeResponse.from_wire(raw), nbytes

    @staticmethod
    def _message_count(
        op: str, params: Dict[str, Any], result: Dict[str, Any]
    ) -> int:
        """Boundary messages exchanged by one step (request + response)."""
        if op == OP_CONTRIB:
            return len(params.get("shares", {})) + len(result.get("contrib", {}))
        if op == OP_MIN_LABELS:
            return len(params.get("labels", {})) + len(result.get("messages", {}))
        if op == OP_EXPAND:
            return len(params.get("vertices", [])) + len(result.get("edges", []))
        if op == OP_MINE_EMBEDDINGS:
            return (
                len(params.get("boundary", []))
                + len(params.get("vertices", []))
                + sum(
                    len(value)
                    for value in result.values()
                    if isinstance(value, list)
                )
            )
        if op in (OP_GRAPH_INFO, OP_DEGREES, OP_EDGE_DUMP):
            return sum(
                len(value) for value in result.values() if isinstance(value, list)
            )
        return len(result.get("entities", []))

    def _round(
        self, op: str, params_by_shard: Dict[int, Dict[str, Any]]
    ) -> Dict[int, Dict[str, Any]]:
        """Run one superstep across the addressed shards (a barrier)."""
        indices = sorted(params_by_shard)
        if self.executor is not None and len(indices) > 1:
            futures = {
                index: self.executor.submit(
                    self._step, index, op, params_by_shard[index]
                )
                for index in indices
            }
            raw = {index: future.result() for index, future in futures.items()}
        else:
            raw = {
                index: self._step(index, op, params_by_shard[index])
                for index in indices
            }
        messages = 0
        nbytes = 0
        results: Dict[int, Dict[str, Any]] = {}
        for index in indices:
            response, step_bytes = raw[index]
            nbytes += step_bytes
            messages += self._message_count(
                op, params_by_shard[index], response.result
            )
            results[index] = response.result
            self._round_kg_versions[index] = response.kg_version
        self.stats.record_round(messages, nbytes)
        self._job_round += 1
        if self.on_round is not None:
            self.on_round(self._job_round)
        return results

    def begin_job(self) -> None:
        """Mark the start of one compute job (resets round-local state)."""
        self.stats.start_job()
        self._job_round = 0
        self._round_kg_versions = {}

    def round_kg_versions(self) -> Dict[int, int]:
        """Per-shard KG version stamps echoed by the rounds of the
        current job (each shard's latest answer wins) — lets a job-level
        result carry the same composite stamp a direct engine-lock read
        would have produced."""
        return dict(self._round_kg_versions)

    # ------------------------------------------------------------------
    # census rounds
    # ------------------------------------------------------------------
    def graph_info(self, documents: bool = False) -> ClusterGraphInfo:
        """Round 0: union vertex set, duplicate disowns, optional docs."""
        params = {"documents": documents}
        results = self._round(
            OP_GRAPH_INFO, {i: dict(params) for i in range(self.num_shards)}
        )
        vertices: Set[str] = set()
        extracted: List[List[Tuple[str, str, str]]] = []
        docs: Dict[str, str] = {}
        for index in range(self.num_shards):
            result = results[index]
            vertices.update(result["vertices"])
            extracted.append(
                [(str(s), str(p), str(o)) for s, p, o in result["extracted"]]
            )
            for entity, description in result.get("entities", []):
                if entity not in docs or not docs[entity]:
                    docs[str(entity)] = str(description)
        kg_versions = tuple(
            shard.kg_version_hint for shard in self.shards
        )
        return ClusterGraphInfo(
            vertices=sorted(vertices),
            disown=disown_sets(extracted),
            documents=docs,
            kg_versions=kg_versions,
        )

    def degrees(self, info: ClusterGraphInfo) -> ClusterDegrees:
        """Round 1 (analytics): owned-degree census under the disowns."""
        results = self._round(
            OP_DEGREES,
            {
                i: {"disown": info.disown[i]}
                for i in range(self.num_shards)
            },
        )
        out_deg: Dict[str, int] = {}
        deg: Dict[str, int] = {}
        srcs: List[List[str]] = []
        incident: List[List[str]] = []
        for index in range(self.num_shards):
            result = results[index]
            for vertex, count in result["out_deg"].items():
                out_deg[vertex] = out_deg.get(vertex, 0) + int(count)
            for vertex, count in result["deg"].items():
                deg[vertex] = deg.get(vertex, 0) + int(count)
            srcs.append([str(v) for v in result["srcs"]])
            incident.append([str(v) for v in result["incident"]])
        return ClusterDegrees(
            out_deg=out_deg,
            deg=deg,
            srcs_by_shard=srcs,
            incident_by_shard=incident,
        )

    def resolve(self, mentions: Sequence[str]) -> List[str]:
        """Link mentions on the first answering shard's linker."""
        last_error: Optional[ClusterError] = None
        for index in range(self.num_shards):
            try:
                response, nbytes = self._step(
                    index, OP_RESOLVE, {"mentions": list(mentions)}
                )
            except ClusterError as exc:
                last_error = exc
                continue
            self.stats.record_step(len(mentions), nbytes)
            return [str(e) for e in response.result["entities"]]
        if last_error is not None:
            raise last_error
        raise ClusterError("no shards available to resolve mentions")

    # ------------------------------------------------------------------
    # analytics jobs (mirror repro.graph.algorithms exactly)
    # ------------------------------------------------------------------
    def pagerank(
        self,
        damping: float = 0.85,
        max_iterations: int = 30,
        tol: float = 1.0e-6,
    ) -> Dict[str, float]:
        """Distributed power-iteration PageRank over the merged graph.

        Same formula, dangling handling, convergence test and defaults
        as :func:`repro.graph.algorithms.pagerank`; per-edge rank shares
        are summed on the owning shards, only ``{src: share}`` /
        ``{dst: contribution}`` maps cross the wire.
        """
        self.begin_job()
        info = self.graph_info()
        census = self.degrees(info)
        vertices = info.vertices
        n = len(vertices)
        if n == 0:
            return {}
        ranks = {vertex: 1.0 / n for vertex in vertices}
        out_deg = {vertex: census.out_deg.get(vertex, 0) for vertex in vertices}
        for _ in range(max_iterations):
            contrib = {vertex: 0.0 for vertex in vertices}
            dangling = 0.0
            shares: Dict[str, float] = {}
            for vertex, rank in ranks.items():
                if out_deg[vertex] == 0:
                    dangling += rank
                else:
                    shares[vertex] = rank / out_deg[vertex]
            params_by_shard: Dict[int, Dict[str, Any]] = {}
            for index in range(self.num_shards):
                shard_shares = {
                    vertex: shares[vertex]
                    for vertex in census.srcs_by_shard[index]
                    if vertex in shares
                }
                if shard_shares:
                    params_by_shard[index] = {
                        "shares": shard_shares,
                        "disown": info.disown[index],
                    }
            if params_by_shard:
                results = self._round(OP_CONTRIB, params_by_shard)
                for index in sorted(results):
                    for dst, value in results[index]["contrib"].items():
                        contrib[dst] += float(value)
            base = (1.0 - damping) / n + damping * dangling / n
            new_ranks = {
                vertex: base + damping * contrib[vertex] for vertex in vertices
            }
            delta = sum(abs(new_ranks[v] - ranks[v]) for v in vertices)
            ranks = new_ranks
            if delta < tol:
                break
        return ranks

    def components(self) -> Dict[str, str]:
        """Distributed min-label connected components (direction ignored).

        Converges to the same fixed point as
        :func:`repro.graph.algorithms.connected_components`: every
        vertex labelled with its weak component's minimum vertex id.
        """
        self.begin_job()
        info = self.graph_info()
        census = self.degrees(info)
        labels = {vertex: vertex for vertex in info.vertices}
        for _ in range(max(len(labels), 1)):
            params_by_shard = {
                index: {
                    "labels": {
                        vertex: labels[vertex]
                        for vertex in census.incident_by_shard[index]
                    },
                    "disown": info.disown[index],
                }
                for index in range(self.num_shards)
                if census.incident_by_shard[index]
            }
            if not params_by_shard:
                break
            results = self._round(OP_MIN_LABELS, params_by_shard)
            changed = False
            for index in sorted(results):
                for vertex, label in results[index]["messages"].items():
                    if _order_key(label) < _order_key(labels[vertex]):
                        labels[vertex] = str(label)
                        changed = True
            if not changed:
                break
        return labels

    def degree_centrality(self) -> Dict[str, int]:
        """Merged-graph total degree per vertex (owned counts summed)."""
        self.begin_job()
        info = self.graph_info()
        census = self.degrees(info)
        return {
            vertex: census.deg.get(vertex, 0) for vertex in info.vertices
        }

    # ------------------------------------------------------------------
    # baseline (benchmark only)
    # ------------------------------------------------------------------
    def ship_everything(self) -> Dict[int, Dict[str, Any]]:
        """The no-protocol baseline: pull every shard's full partition.

        Exists so ``benchmarks/bench_compute.py`` can price what a
        router would pay to rebuild the merged graph centrally; the
        bytes land in the same stats counters as real jobs when this
        coordinator's stats object is private to the measurement.
        """
        self.begin_job()
        return self._round(
            OP_EDGE_DUMP, {i: {} for i in range(self.num_shards)}
        )
