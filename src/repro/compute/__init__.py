"""Distributed superstep compute over the shard wire surface.

NOUS runs its graph workloads — coherence-guided path search and
streaming analytics — on a distributed graph engine (Spark/GraphX).
This package lifts the seed's single-process vertex-centric engine
(:mod:`repro.graph.pregel`) to the shard cluster as a bulk-synchronous
protocol:

- :mod:`repro.compute.protocol` — the compute envelope types shipped
  over ``POST /v1/shard/compute`` and the edge-ownership rule that
  makes the union of per-shard answers exactly one copy of the merged
  graph.
- :mod:`repro.compute.shardstep` — the shard-side executor: one
  stateless superstep per request over the shard's KG partition.
- :mod:`repro.compute.coordinator` — the router-side coordinator: runs
  rounds across all shards (PageRank, connected components, degree
  centrality) and exchanges only frontier/boundary-vertex messages.
- :mod:`repro.compute.pathsearch` — coherent cross-shard path search:
  distributed frontier expansion feeding the existing memoised
  :class:`~repro.qa.pathsearch.CoherentPathSearch` scoring.
- :mod:`repro.compute.mining` — exact cross-shard pattern mining: the
  ``mine_embeddings`` job unions per-shard MNI state and enumerates the
  embeddings that span shard boundaries, so merged trending supports
  match a monolith exactly at any N.

Layering: this package sits *below* ``repro.api`` (the service facade
and cluster import it, never the reverse) and *above* the graph/qa/kb
layers it computes over.
"""

from repro.compute.coordinator import ComputeCoordinator, ComputeStats
from repro.compute.mining import DistributedMiner, MiningOutcome
from repro.compute.pathsearch import DistributedPathSearch
from repro.compute.protocol import ComputeRequest, ComputeResponse
from repro.compute.shardstep import ComputeStepExecutor

__all__ = [
    "ComputeCoordinator",
    "ComputeStats",
    "ComputeRequest",
    "ComputeResponse",
    "ComputeStepExecutor",
    "DistributedMiner",
    "DistributedPathSearch",
    "MiningOutcome",
]
