"""Shard-side superstep executor.

One :class:`ComputeStepExecutor` lives on each shard's service facade
(:meth:`repro.api.service.NousService.compute_step` delegates here,
under the shard's engine lock).  Every request is a complete, stateless
superstep: the executor materialises the shard's KG partition as a
property graph (cached on the KB's monotonic version stamp, like the
topic-annotated QA graph), applies the edge-ownership rule from
:mod:`repro.compute.protocol`, and answers with only the boundary data
the coordinator asked for — never job state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.compute.protocol import (
    MINE_PHASE_CENSUS,
    MINE_PHASE_EXPAND,
    MINE_PHASE_LOCAL,
    OP_CONTRIB,
    OP_DEGREES,
    OP_EDGE_DUMP,
    OP_EXPAND,
    OP_GRAPH_INFO,
    OP_MIN_LABELS,
    OP_MINE_EMBEDDINGS,
    OP_RESOLVE,
    ComputeRequest,
    ComputeResponse,
    disown_param,
    edge_payload,
    instance_edge_payload,
    owns_edge,
    support_entry_payload,
)
from repro.core.pipeline import Nous
from repro.errors import ConfigError
from repro.graph.algorithms import _order_key
from repro.graph.property_graph import Edge, PropertyGraph


class ComputeStepExecutor:
    """Execute stateless compute supersteps over one shard's partition.

    Args:
        nous: The shard's engine.  The caller (the service facade) is
            responsible for holding the engine lock around
            :meth:`execute`; the executor itself does no locking.
    """

    def __init__(self, nous: Nous) -> None:
        self._nous = nous
        self._graph: Optional[PropertyGraph] = None
        self._graph_kb_version = -1

    # ------------------------------------------------------------------
    def execute(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Run one superstep and return the wire-form response.

        Raises:
            ConfigError: on an unknown op or malformed envelope.
        """
        req = ComputeRequest.from_wire(request)
        handlers = {
            OP_GRAPH_INFO: self._graph_info,
            OP_DEGREES: self._degrees,
            OP_EXPAND: self._expand,
            OP_CONTRIB: self._contrib,
            OP_MIN_LABELS: self._min_labels,
            OP_RESOLVE: self._resolve,
            OP_EDGE_DUMP: self._edge_dump,
            OP_MINE_EMBEDDINGS: self._mine_embeddings,
        }
        handler = handlers.get(req.op)
        if handler is None:  # pragma: no cover - from_wire already gates
            raise ConfigError(f"unknown compute op {req.op!r}")
        result = handler(req)
        return ComputeResponse(
            op=req.op,
            shard=req.shard,
            kg_version=self._nous.dynamic.version,
            result=result,
        ).to_wire()

    # ------------------------------------------------------------------
    def _partition_graph(self) -> PropertyGraph:
        """The shard KB as a property graph, cached on ``kb.version``."""
        if (
            self._graph is not None
            and self._graph_kb_version == self._nous.kb.version
        ):
            return self._graph
        self._graph = self._nous.kb.to_property_graph()
        self._graph_kb_version = self._nous.kb.version
        return self._graph

    def _owned_edges(self, req: ComputeRequest) -> List[Edge]:
        """Edges of the local partition this shard owns in the merged graph."""
        disown = disown_param(req.params.get("disown"))
        graph = self._partition_graph()
        return [
            edge
            for edge in graph.edges()
            if owns_edge(edge, req.shard, req.num_shards, disown)
        ]

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    def _graph_info(self, req: ComputeRequest) -> Dict[str, Any]:
        graph = self._partition_graph()
        result: Dict[str, Any] = {
            "vertices": sorted(str(v) for v in graph.vertices()),
            "extracted": [
                list(key) for key in sorted(self._extracted_keys())
            ],
        }
        if req.params.get("documents"):
            kb = self._nous.kb
            result["entities"] = [
                [entity, kb.description(entity)]
                for entity in sorted(kb.entities())
            ]
        return result

    def _extracted_keys(self) -> List[Tuple[str, str, str]]:
        return [
            (triple.subject, triple.predicate, triple.object)
            for triple in self._nous.kb.store
            if not triple.curated
        ]

    def _degrees(self, req: ComputeRequest) -> Dict[str, Any]:
        out_deg: Dict[str, int] = {}
        deg: Dict[str, int] = {}
        for edge in self._owned_edges(req):
            src, dst = str(edge.src), str(edge.dst)
            out_deg[src] = out_deg.get(src, 0) + 1
            deg[src] = deg.get(src, 0) + 1
            deg[dst] = deg.get(dst, 0) + 1
        return {
            "out_deg": dict(sorted(out_deg.items())),
            "deg": dict(sorted(deg.items())),
            "srcs": sorted(out_deg),
            "incident": sorted(deg),
        }

    def _expand(self, req: ComputeRequest) -> Dict[str, Any]:
        """Owned edges incident to the requested frontier vertices.

        Edges whose *other* endpoint is in ``skip`` (a vertex the
        coordinator already expanded) were shipped by this same owner in
        an earlier round and are omitted, so every merged-graph edge
        crosses the wire exactly once per search.
        """
        frontier = [str(v) for v in req.params.get("vertices", [])]
        skip = frozenset(str(v) for v in req.params.get("skip", []))
        disown = disown_param(req.params.get("disown"))
        graph = self._partition_graph()
        seen_eids: Set[int] = set()
        edges: List[Edge] = []
        for vertex in frontier:
            if not graph.has_vertex(vertex):
                continue
            for edge in graph.incident_edges(vertex):
                if edge.eid in seen_eids:
                    continue
                if not owns_edge(edge, req.shard, req.num_shards, disown):
                    continue
                if str(edge.other(vertex)) in skip:
                    continue
                seen_eids.add(edge.eid)
                edges.append(edge)
        edges.sort(key=lambda e: (str(e.src), e.label, str(e.dst)))
        return {"edges": [edge_payload(e) for e in edges]}

    def _contrib(self, req: ComputeRequest) -> Dict[str, Any]:
        """One PageRank superstep: sum incoming rank shares per
        destination over this shard's owned out-edges."""
        shares = req.params.get("shares", {})
        disown = disown_param(req.params.get("disown"))
        graph = self._partition_graph()
        contrib: Dict[str, float] = {}
        for src in sorted(shares):
            if not graph.has_vertex(src):
                continue
            share = float(shares[src])
            for edge in graph.out_edges(src):
                if not owns_edge(edge, req.shard, req.num_shards, disown):
                    continue
                dst = str(edge.dst)
                contrib[dst] = contrib.get(dst, 0.0) + share
        return {"contrib": dict(sorted(contrib.items()))}

    def _min_labels(self, req: ComputeRequest) -> Dict[str, Any]:
        """One connected-components superstep: min-label messages over
        this shard's owned edges (direction ignored)."""
        labels = {str(v): str(lbl) for v, lbl in req.params.get("labels", {}).items()}
        disown = disown_param(req.params.get("disown"))
        messages: Dict[str, str] = {}

        def offer(target: str, label: str) -> None:
            current = messages.get(target)
            if current is None or _order_key(label) < _order_key(current):
                messages[target] = label

        for edge in self._owned_edges(req):
            src, dst = str(edge.src), str(edge.dst)
            src_label = labels.get(src, src)
            dst_label = labels.get(dst, dst)
            if _order_key(src_label) < _order_key(dst_label):
                offer(dst, src_label)
            elif _order_key(dst_label) < _order_key(src_label):
                offer(src, dst_label)
        return {"messages": dict(sorted(messages.items()))}

    def _resolve(self, req: ComputeRequest) -> Dict[str, Any]:
        """Link mentions onto KB entities with this shard's linker."""
        linker = self._nous.mapper.linker
        return {
            "entities": [
                linker.link(str(m)).entity
                for m in req.params.get("mentions", [])
            ]
        }

    def _mine_embeddings(self, req: ComputeRequest) -> Dict[str, Any]:
        """One phase of the distributed embedding enumeration.

        Window edges are extracted on exactly one shard and never
        replicated, so unlike the graph ops there is no ownership rule
        to apply: this shard's window *is* its owned slice of the merged
        window.  All three phases are pure reads of the miner's
        incrementally-maintained state — no re-enumeration happens here.

        ``census``: the window's vertex set plus the miner settings the
        coordinator needs to plan the job.

        ``local``: the aggregate per-pattern support state (embedding
        counts + per-variable distinct vertex images — every embedding
        whose edges all live here, already counted exactly once by this
        miner) and the window edges incident to the coordinator's
        ``boundary`` vertices, each tagged with its shard-local edge id.

        ``expand``: window edges incident to the requested frontier
        ``vertices`` whose ids are not in ``skip`` — the ids shipped in
        earlier rounds — so each window edge crosses the wire at most
        once per job.
        """
        miner = self._nous.dynamic.miner
        phase = str(req.params.get("phase", ""))
        if phase == MINE_PHASE_CENSUS:
            return {
                "vertices": [str(v) for v in miner.window_vertices()],
                "min_support": miner.min_support,
                "max_edges": miner.max_edges,
                "window_edges": miner.window_size,
                "last_timestamp": float(self._nous.last_timestamp),
            }
        if phase == MINE_PHASE_LOCAL:
            boundary = [str(v) for v in req.params.get("boundary", [])]
            return {
                "patterns": [
                    support_entry_payload(pattern, count, images)
                    for pattern, count, images in miner.support_state()
                ],
                "edges": [
                    instance_edge_payload(eid, edge)
                    for eid, edge in miner.incident_instances(boundary)
                ],
            }
        if phase == MINE_PHASE_EXPAND:
            frontier = [str(v) for v in req.params.get("vertices", [])]
            skip = frozenset(int(e) for e in req.params.get("skip", []))
            return {
                "edges": [
                    instance_edge_payload(eid, edge)
                    for eid, edge in miner.incident_instances(frontier, skip)
                ]
            }
        raise ConfigError(f"unknown mine_embeddings phase {phase!r}")

    def _edge_dump(self, req: ComputeRequest) -> Dict[str, Any]:
        """The ship-everything baseline: the *entire* local partition,
        ownership ignored — what a router would have to pull from every
        shard to rebuild the merged graph centrally."""
        graph = self._partition_graph()
        kb = self._nous.kb
        edges = sorted(
            graph.edges(), key=lambda e: (str(e.src), e.label, str(e.dst))
        )
        return {
            "vertices": sorted(str(v) for v in graph.vertices()),
            "entities": [
                [entity, kb.description(entity)]
                for entity in sorted(kb.entities())
            ],
            "edges": [edge_payload(e) for e in edges],
        }
