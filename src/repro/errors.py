"""Exception hierarchy for the NOUS reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """Base class for property-graph errors."""


class VertexNotFoundError(GraphError):
    """A vertex id was referenced that is not present in the graph."""

    def __init__(self, vertex_id: object) -> None:
        super().__init__(f"vertex not found: {vertex_id!r}")
        self.vertex_id = vertex_id


class EdgeNotFoundError(GraphError):
    """An edge id was referenced that is not present in the graph."""

    def __init__(self, edge_id: object) -> None:
        super().__init__(f"edge not found: {edge_id!r}")
        self.edge_id = edge_id


class DuplicateVertexError(GraphError):
    """A vertex id was added twice with ``strict=True``."""

    def __init__(self, vertex_id: object) -> None:
        super().__init__(f"vertex already exists: {vertex_id!r}")
        self.vertex_id = vertex_id


class KBError(ReproError):
    """Base class for knowledge-base errors."""


class UnknownPredicateError(KBError):
    """A predicate was used that the ontology does not define."""

    def __init__(self, predicate: str) -> None:
        super().__init__(f"unknown predicate: {predicate!r}")
        self.predicate = predicate


class UnknownTypeError(KBError):
    """An entity type was used that the taxonomy does not define."""

    def __init__(self, type_name: str) -> None:
        super().__init__(f"unknown type: {type_name!r}")
        self.type_name = type_name


class NLPError(ReproError):
    """Base class for NLP-pipeline errors."""


class ExtractionError(NLPError):
    """Parallel extraction could not complete a batch: a pool worker
    died (OOM-killed, segfaulted, or externally SIGKILLed) and the
    one-shot pool respawn died again.  The batch is abandoned *before*
    any linking or KG mutation, so the engine state is untouched.

    Attributes:
        doc_index: Submission-order index of the first document whose
            result was lost when the pool broke.
        doc_id: Its document id (may be empty).
    """

    def __init__(
        self,
        message: str | None = None,
        doc_index: int = -1,
        doc_id: str = "",
    ) -> None:
        if message is None:
            where = f" (doc_id={doc_id!r})" if doc_id else ""
            message = (
                "extraction pool worker died while processing document "
                f"index {doc_index}{where}; pool was respawned once and "
                "broke again — batch aborted, no state applied"
            )
        super().__init__(message)
        self.doc_index = doc_index
        self.doc_id = doc_id


class LinkingError(ReproError):
    """Base class for entity-linking / predicate-mapping errors."""


class MiningError(ReproError):
    """Base class for frequent-graph-mining errors."""


class PatternError(MiningError):
    """A malformed pattern (disconnected, too large, bad variables)."""


class QAError(ReproError):
    """Base class for question-answering errors."""


class QueryError(ReproError):
    """Base class for query-language errors."""


class QueryParseError(QueryError):
    """The NL-like query string could not be parsed into a query class."""

    def __init__(self, text: str, reason: str) -> None:
        super().__init__(f"cannot parse query {text!r}: {reason}")
        self.text = text
        self.reason = reason


class ConfigError(ReproError):
    """Invalid configuration value supplied to a component."""


class ClusterError(ReproError):
    """A shard of a sharded/process cluster failed as a *unit*: a worker
    subprocess died, never became healthy, or stopped answering its
    gateway — as opposed to an ordinary query/ingest error a healthy
    shard returned."""


class TenancyError(ReproError):
    """Base class for multi-tenant namespace errors: bad tenant names,
    malformed tenant specs, or registry operations that cannot apply
    (deleting the ``default`` tenant a gateway's legacy routes resolve
    to)."""


class UnknownTenantError(TenancyError):
    """A request named a tenant the registry does not know."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown tenant: {name!r}")
        self.name = name


class TenantExistsError(TenancyError):
    """A tenant was created twice."""

    def __init__(self, name: str) -> None:
        super().__init__(f"tenant already exists: {name!r}")
        self.name = name


class TenantQuotaError(TenancyError):
    """A tenant hit one of its fairness quotas (standing-query slots).

    Maps to HTTP 429 on the gateway — the request is well-formed and the
    tenant exists; it is simply over its budget *right now*, so clients
    may retry after releasing or waiting out existing subscriptions.
    """

    def __init__(self, name: str, quota: int, in_use: int) -> None:
        super().__init__(
            f"tenant {name!r} is at its standing-query quota "
            f"({in_use}/{quota} subscriptions in use)"
        )
        self.name = name
        self.quota = quota
        self.in_use = in_use


class StorageError(ReproError):
    """The durability layer failed: a snapshot could not be written or
    read back, the write-ahead log could not be appended/fsynced, or a
    recovery replay met state it cannot apply.  Torn WAL tails and
    corrupt snapshots are *not* errors — recovery degrades through them
    by design — so this class marks the failures that genuinely lose
    the durability guarantee (e.g. an unwritable data directory)."""
