"""Pattern algebra: typed-edge patterns with exact canonicalisation.

A *pattern* abstracts instance edges to the type level: the instance
edge ``(DJI:Company) -acquired-> (Kiva:Company)`` becomes the pattern
edge ``(?0:Company) -acquired-> (?1:Company)``.  Patterns are small
connected directed multigraphs over variables; NOUS mines them with at
most ``max_edges`` (default 3) edges, so exact canonicalisation by
minimisation over variable bijections is cheap and sound (no
gSpan-style DFS-code machinery needed at this size).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Dict, FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.errors import PatternError


@dataclass(frozen=True)
class InstanceEdge:
    """A concrete KG edge with endpoint type labels.

    Attributes:
        src / dst: Instance vertex ids.
        src_label / dst_label: Type labels (pattern vocabulary).
        predicate: Edge label.
    """

    src: Hashable
    dst: Hashable
    src_label: str
    dst_label: str
    predicate: str


@dataclass(frozen=True, order=True)
class PatternEdge:
    """One edge of a pattern, over integer variables."""

    src: int
    dst: int
    src_label: str
    dst_label: str
    predicate: str


@dataclass(frozen=True)
class Pattern:
    """A canonical pattern: a sorted tuple of :class:`PatternEdge`.

    Construct only through :func:`canonicalize`; direct construction is
    for internal use and tests.
    """

    edges: Tuple[PatternEdge, ...]

    @property
    def size(self) -> int:
        """Number of edges."""
        return len(self.edges)

    def variables(self) -> Set[int]:
        out: Set[int] = set()
        for edge in self.edges:
            out.add(edge.src)
            out.add(edge.dst)
        return out

    @property
    def num_variables(self) -> int:
        return len(self.variables())

    def describe(self) -> str:
        """Human-readable form: (?0:Company)-[acquired]->(?1:Company) ..."""
        parts = [
            f"(?{e.src}:{e.src_label})-[{e.predicate}]->(?{e.dst}:{e.dst_label})"
            for e in self.edges
        ]
        return " ".join(parts)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.describe()


def _labels_consistent(
    edges: Sequence[Tuple[Hashable, Hashable, str, str, str]]
) -> Dict[Hashable, str]:
    """Collect node labels, rejecting contradictions."""
    labels: Dict[Hashable, str] = {}
    for src, dst, src_label, dst_label, _pred in edges:
        for node, label in ((src, src_label), (dst, dst_label)):
            if labels.setdefault(node, label) != label:
                raise PatternError(
                    f"node {node!r} labelled both {labels[node]!r} and {label!r}"
                )
    return labels


def is_connected(edges: Iterable[InstanceEdge]) -> bool:
    """True when the edges form one weakly-connected component."""
    edges = list(edges)
    if not edges:
        return False
    adjacency: Dict[Hashable, Set[Hashable]] = {}
    for edge in edges:
        adjacency.setdefault(edge.src, set()).add(edge.dst)
        adjacency.setdefault(edge.dst, set()).add(edge.src)
    start = edges[0].src
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for nbr in adjacency[node]:
            if nbr not in seen:
                seen.add(nbr)
                stack.append(nbr)
    return seen == set(adjacency)


def canonicalize(
    edges: Sequence[InstanceEdge],
) -> Tuple[Pattern, Dict[Hashable, int]]:
    """Canonical pattern of a set of instance edges.

    Tries every bijection from instance nodes to variable ids and keeps
    the lexicographically smallest edge tuple — exact graph
    canonicalisation, exponential only in the (small, bounded) number of
    pattern nodes.

    Returns:
        ``(pattern, node_to_variable)`` where the mapping realises the
        canonical form.

    Raises:
        PatternError: on empty, disconnected or label-contradictory input.
    """
    edges = list(edges)
    if not edges:
        raise PatternError("cannot canonicalize an empty edge set")
    if not is_connected(edges):
        raise PatternError("pattern edges must be connected")
    raw = [(e.src, e.dst, e.src_label, e.dst_label, e.predicate) for e in edges]
    _labels_consistent(raw)

    nodes = sorted({n for e in edges for n in (e.src, e.dst)}, key=repr)
    best: Tuple[PatternEdge, ...] = ()
    best_mapping: Dict[Hashable, int] = {}
    for perm in permutations(range(len(nodes))):
        mapping = {node: var for node, var in zip(nodes, perm)}
        candidate = tuple(
            sorted(
                PatternEdge(
                    src=mapping[e.src],
                    dst=mapping[e.dst],
                    src_label=e.src_label,
                    dst_label=e.dst_label,
                    predicate=e.predicate,
                )
                for e in edges
            )
        )
        if not best or candidate < best:
            best = candidate
            best_mapping = mapping
    return Pattern(edges=best), best_mapping


def sub_patterns(pattern: Pattern) -> List[Pattern]:
    """All connected (size-1) sub-patterns obtained by dropping one edge.

    This is the lattice "parent" relation used for closedness checks and
    for the paper's reconstruction of smaller patterns when a larger one
    turns infrequent.
    """
    if pattern.size <= 1:
        return []
    out: Set[Pattern] = set()
    for skip in range(pattern.size):
        remaining = [e for i, e in enumerate(pattern.edges) if i != skip]
        instance_edges = [
            InstanceEdge(
                src=e.src, dst=e.dst, src_label=e.src_label,
                dst_label=e.dst_label, predicate=e.predicate,
            )
            for e in remaining
        ]
        if is_connected(instance_edges):
            sub, _ = canonicalize(instance_edges)
            out.add(sub)
    return sorted(out, key=lambda p: p.edges)


def is_super_pattern(candidate: Pattern, sub: Pattern) -> bool:
    """True when ``sub`` is a (proper or equal) sub-pattern of ``candidate``.

    Checked by recursive edge-dropping — exact for the bounded sizes NOUS
    mines.
    """
    if candidate == sub:
        return True
    if candidate.size <= sub.size:
        return False
    frontier = {candidate}
    while frontier:
        next_frontier: Set[Pattern] = set()
        for pattern in frontier:
            for smaller in sub_patterns(pattern):
                if smaller == sub:
                    return True
                if smaller.size > sub.size:
                    next_frontier.add(smaller)
        frontier = next_frontier
    return False
