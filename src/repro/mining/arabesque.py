"""Arabesque-style from-scratch miner (the paper's comparison system).

Arabesque (Teixeira et al. 2015) mines a *static* graph by embedding
exploration: level k embeddings are expanded by one adjacent edge into
level k+1 candidates, aggregated by canonical pattern, and patterns
below the support threshold are pruned (their embeddings are not
expanded further).  Work is distributed by partitioning embeddings
across workers; we simulate the workers to keep the load-balance
statistics observable.

Used as the per-window recompute baseline against
:class:`~repro.mining.streaming.StreamingPatternMiner`: on a sliding
window the whole exploration re-runs for every slide, which is what the
streaming miner's ~3x advantage comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.mining.patterns import InstanceEdge, Pattern, canonicalize
from repro.mining.support import PatternStats, closed_patterns


@dataclass
class MiningResult:
    """Output of one from-scratch mining run.

    Attributes:
        supports: Pattern -> MNI support (only patterns that survived
            pruning levels are exact; pruned patterns are absent).
        closed_frequent: Closed frequent patterns.
        embeddings_explored: Total embeddings materialised (cost proxy).
        per_worker_embeddings: Embeddings processed by each simulated
            worker.
    """

    supports: Dict[Pattern, int]
    closed_frequent: List[Tuple[Pattern, int]]
    embeddings_explored: int
    per_worker_embeddings: List[int] = field(default_factory=list)


class ArabesqueMiner:
    """Level-wise embedding-exploration miner over a static edge set.

    Args:
        min_support: MNI threshold.
        max_edges: Pattern size cap (same meaning as the streaming miner).
        n_workers: Simulated workers for load statistics.
    """

    def __init__(
        self, min_support: int = 3, max_edges: int = 3, n_workers: int = 4
    ) -> None:
        if min_support < 1:
            raise ConfigError("min_support must be >= 1")
        if max_edges < 1:
            raise ConfigError("max_edges must be >= 1")
        if n_workers < 1:
            raise ConfigError("n_workers must be >= 1")
        self.min_support = min_support
        self.max_edges = max_edges
        self.n_workers = n_workers

    def mine(self, edges: Sequence[InstanceEdge]) -> MiningResult:
        """Mine all frequent patterns of the edge multiset from scratch."""
        edge_list = list(edges)
        incident: Dict[Hashable, Set[int]] = {}
        for eid, edge in enumerate(edge_list):
            incident.setdefault(edge.src, set()).add(eid)
            incident.setdefault(edge.dst, set()).add(eid)

        explored = 0
        per_worker = [0] * self.n_workers
        supports: Dict[Pattern, int] = {}

        # Level 1: every edge is an embedding.
        level_stats: Dict[Pattern, PatternStats] = {}
        level_embeddings: Dict[Pattern, List[FrozenSet[int]]] = {}
        for eid, edge in enumerate(edge_list):
            pattern, mapping = canonicalize([edge])
            stats = level_stats.setdefault(pattern, PatternStats(pattern=pattern))
            stats.add_embedding(mapping)
            level_embeddings.setdefault(pattern, []).append(frozenset([eid]))
            explored += 1
            per_worker[eid % self.n_workers] += 1

        for level in range(1, self.max_edges + 1):
            # Aggregate: record supports, prune infrequent patterns.
            survivors: List[FrozenSet[int]] = []
            for pattern, stats in level_stats.items():
                support = stats.mni_support
                supports[pattern] = support
                if support >= self.min_support:
                    survivors.extend(level_embeddings.get(pattern, ()))
            if level == self.max_edges or not survivors:
                break
            # Expand each surviving embedding by one adjacent edge.
            next_stats: Dict[Pattern, PatternStats] = {}
            next_embeddings: Dict[Pattern, List[FrozenSet[int]]] = {}
            seen: Set[FrozenSet[int]] = set()
            for index, subset in enumerate(survivors):
                nodes = set()
                facts = set()
                for eid in subset:
                    nodes.add(edge_list[eid].src)
                    nodes.add(edge_list[eid].dst)
                    facts.add(
                        (edge_list[eid].src, edge_list[eid].dst,
                         edge_list[eid].predicate)
                    )
                for node in nodes:
                    for eid in incident.get(node, ()):
                        if eid in subset:
                            continue
                        candidate = edge_list[eid]
                        # Patterns range over distinct facts (see the
                        # streaming miner) — skip duplicate instances.
                        if (candidate.src, candidate.dst, candidate.predicate) in facts:
                            continue
                        extended = subset | {eid}
                        if extended in seen:
                            continue
                        seen.add(extended)
                        embedding_edges = [edge_list[e] for e in extended]
                        pattern, mapping = canonicalize(embedding_edges)
                        stats = next_stats.setdefault(
                            pattern, PatternStats(pattern=pattern)
                        )
                        stats.add_embedding(mapping)
                        next_embeddings.setdefault(pattern, []).append(extended)
                        explored += 1
                        per_worker[index % self.n_workers] += 1
            level_stats = next_stats
            level_embeddings = next_embeddings

        return MiningResult(
            supports=supports,
            closed_frequent=closed_patterns(supports, self.min_support),
            embeddings_explored=explored,
            per_worker_embeddings=per_worker,
        )
