"""Rule learning via frequent graph mining (paper §3.5).

The research contribution of NOUS: a **streaming** closed-frequent-
pattern miner over a sliding window of typed KG edges, with incremental
maintenance (embeddings are added/retracted as edges enter/leave the
window) and reconstruction of smaller frequent patterns when larger ones
turn infrequent.

Baselines for the paper's "3x speedup vs Arabesque" claim:

- :class:`~repro.mining.arabesque.ArabesqueMiner` — from-scratch
  embedding-exploration mining per window (Arabesque's computation
  model: expand embeddings level-wise, aggregate by canonical pattern).
- :class:`~repro.mining.transactions.TransactionMiner` — the
  transaction-setting miner (gSpan's setting) over per-document graphs.

All miners share one pattern algebra (:mod:`repro.mining.patterns`) and
one support measure (MNI — minimum node image — which is anti-monotone),
so their outputs are directly comparable.
"""

from repro.mining.patterns import (
    InstanceEdge,
    Pattern,
    PatternEdge,
    canonicalize,
    is_connected,
    sub_patterns,
)
from repro.mining.support import PatternStats
from repro.mining.streaming import StreamingPatternMiner, WindowReport
from repro.mining.arabesque import ArabesqueMiner
from repro.mining.transactions import TransactionMiner

__all__ = [
    "InstanceEdge",
    "Pattern",
    "PatternEdge",
    "canonicalize",
    "is_connected",
    "sub_patterns",
    "PatternStats",
    "StreamingPatternMiner",
    "WindowReport",
    "ArabesqueMiner",
    "TransactionMiner",
]
