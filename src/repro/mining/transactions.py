"""Transaction-setting frequent subgraph mining (gSpan's setting).

The paper contrasts its streaming single-graph miner with "transaction
setting based algorithms such as gSpan": there, the input is a *set of
small graphs* (here: one graph per document) and support is the number
of transactions containing the pattern — not MNI on one big graph.

Since per-document KG graphs are tiny (a handful of triples), candidate
patterns are enumerated exactly per transaction through the shared
canonical-pattern algebra, then counted across transactions with
anti-monotone level pruning — functionally the FSG/gSpan computation at
this scale without DFS-code machinery (documented substitution; the
canonical forms are exact either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.errors import ConfigError
from repro.mining.patterns import InstanceEdge, Pattern, canonicalize
from repro.mining.support import closed_patterns


@dataclass
class TransactionResult:
    """Output of a transaction-setting mining run.

    Attributes:
        supports: Pattern -> number of transactions containing it.
        closed_frequent: Closed frequent patterns under that support.
        patterns_counted: Total (pattern, transaction) pairs touched.
    """

    supports: Dict[Pattern, int]
    closed_frequent: List[Tuple[Pattern, int]]
    patterns_counted: int


class TransactionMiner:
    """Frequent-subgraph miner over a set of small graphs.

    Args:
        min_support: Minimum number of supporting transactions.
        max_edges: Pattern size cap.
    """

    def __init__(self, min_support: int = 2, max_edges: int = 3) -> None:
        if min_support < 1:
            raise ConfigError("min_support must be >= 1")
        if max_edges < 1:
            raise ConfigError("max_edges must be >= 1")
        self.min_support = min_support
        self.max_edges = max_edges

    def mine(
        self, transactions: Sequence[Sequence[InstanceEdge]]
    ) -> TransactionResult:
        """Mine patterns occurring in at least ``min_support`` transactions."""
        per_transaction: List[Set[Pattern]] = []
        counted = 0
        for edges in transactions:
            patterns = self._transaction_patterns(list(edges))
            per_transaction.append(patterns)
            counted += len(patterns)

        supports: Dict[Pattern, int] = {}
        for patterns in per_transaction:
            for pattern in patterns:
                supports[pattern] = supports.get(pattern, 0) + 1

        return TransactionResult(
            supports=supports,
            closed_frequent=closed_patterns(supports, self.min_support),
            patterns_counted=counted,
        )

    def _transaction_patterns(self, edges: List[InstanceEdge]) -> Set[Pattern]:
        """Distinct patterns (≤ max_edges) present in one transaction."""
        incident: Dict[Hashable, Set[int]] = {}
        for eid, edge in enumerate(edges):
            incident.setdefault(edge.src, set()).add(eid)
            incident.setdefault(edge.dst, set()).add(eid)

        patterns: Set[Pattern] = set()
        seen: Set[FrozenSet[int]] = set()
        stack: List[Tuple[FrozenSet[int], Set[Hashable]]] = []
        for eid, edge in enumerate(edges):
            subset = frozenset([eid])
            if subset not in seen:
                seen.add(subset)
                stack.append((subset, {edge.src, edge.dst}))
        while stack:
            subset, nodes = stack.pop()
            pattern, _ = canonicalize([edges[e] for e in subset])
            patterns.add(pattern)
            if len(subset) >= self.max_edges:
                continue
            facts = {
                (edges[e].src, edges[e].dst, edges[e].predicate) for e in subset
            }
            for node in nodes:
                for eid in incident.get(node, ()):
                    if eid in subset:
                        continue
                    edge = edges[eid]
                    if (edge.src, edge.dst, edge.predicate) in facts:
                        continue  # duplicate fact instance
                    extended = subset | {eid}
                    if extended in seen:
                        continue
                    seen.add(extended)
                    stack.append((extended, nodes | {edge.src, edge.dst}))
        return patterns
