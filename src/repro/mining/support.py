"""Support accounting: embeddings and MNI (minimum node image).

MNI support of a pattern is the minimum, over pattern variables, of the
number of distinct graph vertices that appear in that variable position
across all embeddings.  MNI is anti-monotone (a super-pattern never has
higher support), which the level-wise and streaming miners both rely on
for pruning/maintenance — the same measure Arabesque and GraMi use.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.mining.patterns import Pattern


@dataclass
class PatternStats:
    """Incrementally maintained support state for one pattern.

    Attributes:
        pattern: The canonical pattern.
        embedding_count: Number of live (edge-induced) embeddings.
        var_images: Per canonical variable, a multiset of instance
            vertices filling that position across live embeddings.
    """

    pattern: Pattern
    embedding_count: int = 0
    var_images: Dict[int, Counter] = field(default_factory=dict)

    def add_embedding(self, assignment: Dict[Hashable, int]) -> None:
        """Record one embedding via its node -> canonical-variable map."""
        self.embedding_count += 1
        for node, var in assignment.items():
            self.var_images.setdefault(var, Counter())[node] += 1

    def remove_embedding(self, assignment: Dict[Hashable, int]) -> None:
        """Retract one embedding previously added with the same map."""
        self.embedding_count -= 1
        for node, var in assignment.items():
            images = self.var_images.get(var)
            if images is None:
                continue
            images[node] -= 1
            if images[node] <= 0:
                del images[node]

    @property
    def mni_support(self) -> int:
        """Minimum node image support over the pattern's variables."""
        if self.embedding_count <= 0:
            return 0
        variables = self.pattern.variables()
        if not variables:
            return 0
        return min(len(self.var_images.get(var, ())) for var in variables)

    def is_dead(self) -> bool:
        return self.embedding_count <= 0


def closed_patterns(
    supports: Dict[Pattern, int], min_support: int
) -> List[Tuple[Pattern, int]]:
    """Closed frequent patterns from a support table.

    A frequent pattern is closed when no frequent *super*-pattern has the
    same support.  Because every mined pattern's sub-patterns are also in
    the table (the miners enumerate bottom-up), the check only needs the
    one-edge-larger patterns' sub-pattern links.

    Returns:
        ``(pattern, support)`` sorted by (-support, size, edges).
    """
    from repro.mining.patterns import sub_patterns  # local to avoid cycle

    frequent = {p: s for p, s in supports.items() if s >= min_support}
    # For each frequent pattern, record the best support among its
    # immediate frequent super-patterns.
    best_super: Dict[Pattern, int] = {}
    for pattern, support in frequent.items():
        if pattern.size < 2:
            continue
        for sub in sub_patterns(pattern):
            if sub in frequent:
                best_super[sub] = max(best_super.get(sub, 0), support)
    out = [
        (pattern, support)
        for pattern, support in frequent.items()
        if best_super.get(pattern, -1) != support
    ]
    out.sort(key=lambda item: (-item[1], item[0].size, item[0].edges))
    return out
