"""The streaming closed-frequent-pattern miner (paper §3.5).

State is maintained *incrementally*: when an edge enters the sliding
window, exactly the embeddings that contain it are discovered (a local
enumeration around the new edge) and added to each pattern's support;
when an edge expires, the same local enumeration retracts them.  No
global recomputation ever happens — this asymmetry versus from-scratch
systems (Arabesque re-mines the whole window) is the source of the
paper's reported ~3x speedup.

When a pattern's support falls below the threshold, its maximal still-
frequent sub-patterns are already present in the maintained lattice, so
the paper's "reconstruction of smaller frequent patterns from larger
patterns that just turned infrequent" is a constant-time lookup.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Container,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import ConfigError
from repro.mining.patterns import (
    InstanceEdge,
    Pattern,
    canonicalize,
    sub_patterns,
)
from repro.mining.support import PatternStats, closed_patterns


@dataclass
class WindowReport:
    """Snapshot of mining state, emitted on demand (Figure 7's payload).

    Attributes:
        timestamp: Stream time of the snapshot.
        closed_frequent: ``(pattern, support)`` list.
        newly_frequent: Patterns frequent now but not at last snapshot.
        newly_infrequent: Patterns that lost frequent status, each with
            its maximal still-frequent sub-patterns (the reconstruction).
        window_edges: Edges currently in the window.
    """

    timestamp: float
    closed_frequent: List[Tuple[Pattern, int]]
    newly_frequent: List[Pattern] = field(default_factory=list)
    newly_infrequent: List[Tuple[Pattern, List[Pattern]]] = field(default_factory=list)
    window_edges: int = 0


class StreamingPatternMiner:
    """Incremental sliding-window miner over typed instance edges.

    Args:
        min_support: MNI support threshold for "frequent".
        max_edges: Pattern size cap (the paper mines small rules; 3 keeps
            exact canonicalisation cheap).
        max_embeddings_per_edge: Safety valve against degree blow-up; the
            local enumeration stops after this many subsets per update
            (counts then become lower bounds — disabled by default).
    """

    def __init__(
        self,
        min_support: int = 3,
        max_edges: int = 3,
        max_embeddings_per_edge: Optional[int] = None,
    ) -> None:
        if min_support < 1:
            raise ConfigError("min_support must be >= 1")
        if max_edges < 1:
            raise ConfigError("max_edges must be >= 1")
        self.min_support = min_support
        self.max_edges = max_edges
        self.max_embeddings_per_edge = max_embeddings_per_edge
        self._edges: Dict[int, InstanceEdge] = {}
        self._incident: Dict[Hashable, Set[int]] = {}
        # eid -> (src, dst, predicate), maintained incrementally so the
        # distinct-fact check in the local enumeration never rebuilds keys
        # from edge objects.
        self._fact_of: Dict[int, Tuple[Hashable, Hashable, str]] = {}
        self._stats: Dict[Pattern, PatternStats] = {}
        self._eid = itertools.count()
        self._previous_frequent: Set[Pattern] = set()
        self.updates_processed = 0
        self.embeddings_touched = 0

    # ------------------------------------------------------------------
    # stream interface
    # ------------------------------------------------------------------
    def add_edge(self, edge: InstanceEdge) -> int:
        """Insert one instance edge; returns its id (needed to remove)."""
        eid = next(self._eid)
        self._edges[eid] = edge
        self._incident.setdefault(edge.src, set()).add(eid)
        self._incident.setdefault(edge.dst, set()).add(eid)
        self._fact_of[eid] = (edge.src, edge.dst, edge.predicate)
        self._apply_local_embeddings(eid, delta=+1)
        self.updates_processed += 1
        return eid

    def remove_edge(self, eid: int) -> None:
        """Retract an edge previously added (window expiry)."""
        if eid not in self._edges:
            raise ConfigError(f"unknown edge id {eid}")
        self._apply_local_embeddings(eid, delta=-1)
        edge = self._edges.pop(eid)
        del self._fact_of[eid]
        for node in {edge.src, edge.dst}:
            incident = self._incident.get(node)
            if incident is None:
                continue
            incident.discard(eid)
            if not incident:
                del self._incident[node]
        self.updates_processed += 1

    @property
    def window_size(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def supports(self) -> Dict[Pattern, int]:
        """Current MNI support of every tracked pattern."""
        return {
            pattern: stats.mni_support
            for pattern, stats in self._stats.items()
            if stats.embedding_count > 0
        }

    def frequent_patterns(self) -> Dict[Pattern, int]:
        """Patterns at or above ``min_support``."""
        return {
            p: s for p, s in self.supports().items() if s >= self.min_support
        }

    def closed_frequent_patterns(self) -> List[Tuple[Pattern, int]]:
        """Closed frequent patterns of the current window."""
        return closed_patterns(self.supports(), self.min_support)

    def window_vertices(self) -> List[Hashable]:
        """Vertices touched by at least one window edge, sorted by repr.

        The distributed miner's census: two shards sharing a window
        vertex may hold edges of the same cross-shard embedding.
        """
        return sorted(self._incident, key=repr)

    def incident_instances(
        self, vertices: Iterable[Hashable], skip: Container[int] = ()
    ) -> List[Tuple[int, InstanceEdge]]:
        """Window edges incident to any of ``vertices``, with their ids.

        Edges whose id is in ``skip`` (already shipped to a coordinator
        in an earlier round) are omitted, so each window edge crosses
        the wire at most once per distributed enumeration.
        """
        out: Dict[int, InstanceEdge] = {}
        for vertex in vertices:
            for eid in self._incident.get(vertex, ()):
                if eid in skip or eid in out:
                    continue
                out[eid] = self._edges[eid]
        return sorted(out.items())

    def support_state(
        self,
    ) -> List[Tuple[Pattern, int, Dict[int, List[Hashable]]]]:
        """Per-pattern aggregate state: ``(pattern, embeddings, images)``.

        ``images`` maps each canonical variable to the distinct vertices
        bound there across this miner's live embeddings — exactly the
        data a coordinator needs to union per-shard MNI state without
        re-enumerating local embeddings.  Sorted by pattern for
        deterministic wire order.
        """
        out: List[Tuple[Pattern, int, Dict[int, List[Hashable]]]] = []
        for pattern, stats in self._stats.items():
            if stats.embedding_count <= 0:
                continue
            images = {
                var: sorted(counter, key=repr)
                for var, counter in stats.var_images.items()
                if counter
            }
            out.append((pattern, stats.embedding_count, images))
        out.sort(key=lambda item: item[0].edges)
        return out

    def report(self, timestamp: float = 0.0) -> WindowReport:
        """Snapshot with frequency-transition events since the last call."""
        frequent_now = set(self.frequent_patterns())
        newly_frequent = sorted(
            frequent_now - self._previous_frequent, key=lambda p: p.edges
        )
        newly_infrequent: List[Tuple[Pattern, List[Pattern]]] = []
        for lost in sorted(self._previous_frequent - frequent_now, key=lambda p: p.edges):
            # Reconstruction: maximal still-frequent sub-patterns.
            survivors = [
                sub for sub in sub_patterns(lost) if sub in frequent_now
            ]
            newly_infrequent.append((lost, survivors))
        self._previous_frequent = frequent_now
        return WindowReport(
            timestamp=timestamp,
            closed_frequent=self.closed_frequent_patterns(),
            newly_frequent=newly_frequent,
            newly_infrequent=newly_infrequent,
            window_edges=self.window_size,
        )

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------
    def _apply_local_embeddings(self, seed_eid: int, delta: int) -> None:
        """Add/retract every connected edge subset containing ``seed_eid``."""
        for subset in self._connected_subsets(seed_eid):
            edges = [self._edges[eid] for eid in subset]
            pattern, mapping = canonicalize(edges)
            stats = self._stats.get(pattern)
            if stats is None:
                if delta < 0:
                    continue  # retracting something never counted
                stats = PatternStats(pattern=pattern)
                self._stats[pattern] = stats
            if delta > 0:
                stats.add_embedding(mapping)
            else:
                stats.remove_embedding(mapping)
                if stats.is_dead():
                    del self._stats[pattern]
            self.embeddings_touched += 1

    def _connected_subsets(self, seed_eid: int) -> List[FrozenSet[int]]:
        """All connected subsets of window edges containing the seed,
        with at most ``max_edges`` edges."""
        seed_edge = self._edges[seed_eid]
        results: List[FrozenSet[int]] = []
        seen: Set[FrozenSet[int]] = set()
        start = frozenset([seed_eid])
        stack: List[Tuple[FrozenSet[int], Set[Hashable]]] = [
            (start, {seed_edge.src, seed_edge.dst})
        ]
        seen.add(start)
        budget = self.max_embeddings_per_edge
        while stack:
            subset, nodes = stack.pop()
            results.append(subset)
            if budget is not None and len(results) >= budget:
                break
            if len(subset) >= self.max_edges:
                continue
            # candidate extensions: edges incident to the subset's nodes
            facts = {self._fact_of[e] for e in subset}
            for node in nodes:
                for eid in self._incident.get(node, ()):
                    if eid in subset:
                        continue
                    # A pattern ranges over *distinct facts*: two window
                    # instances of the same (s, p, o) must not pair up.
                    if self._fact_of[eid] in facts:
                        continue
                    edge = self._edges[eid]
                    extended = subset | {eid}
                    if extended in seen:
                        continue
                    seen.add(extended)
                    stack.append((extended, nodes | {edge.src, edge.dst}))
        return results
