"""The NOUS facade: end-to-end construction + querying (Figure 1).

``Nous`` owns every stage: document in → sentences → raw triples →
entity linking + predicate mapping → confidence estimation → dynamic KG
update → (on demand) trending reports, entity summaries and explanatory
path answers.

Two ingestion paths share that machinery: :meth:`Nous.ingest` processes
one document at a time (the streaming case), while
:meth:`Nous.ingest_batch` amortises the per-document fixed costs —
collective entity linking, confidence retraining and window-doomed miner
updates — across a whole batch (the catch-up / bulk-load case).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.confidence.estimator import ConfidenceEstimator
from repro.core.dynamic_kg import DynamicKnowledgeGraph
from repro.core.statistics import GraphStatistics, compute_statistics
from repro.errors import ConfigError, QAError
from repro.graph.property_graph import PropertyGraph
from repro.graph.temporal import CountWindow
from repro.kb.drone_kb import build_drone_kb
from repro.kb.knowledge_base import KnowledgeBase
from repro.linking.mapper import MappedTriple, RejectedTriple, TripleMapper
from repro.mining.streaming import WindowReport
from repro.nlp.dates import SimpleDate
from repro.nlp.parallel import (
    ExtractionJob,
    ParallelExtractor,
    PipelineSpec,
)
from repro.nlp.pipeline import NlpPipeline, RawTriple
from repro.qa.lda import LdaModel, LdaTopics
from repro.qa.pathsearch import CoherentPathSearch, RankedPath
from repro.qa.topics import assign_topic_vectors


@dataclass
class NousConfig:
    """Pipeline configuration.

    Attributes:
        window_size: Sliding-window size (extracted facts) for trending.
        min_support / max_pattern_edges: Streaming miner parameters.
        accept_threshold: Final-confidence gate for KG insertion.
        retrain_every: Retrain the BPR models after this many accepted
            facts (0 disables periodic retraining).
        n_topics / lda_iterations: LDA settings for the QA topic space.
        max_hops / beam_width: Path-search settings.
        seed: Master seed for the stochastic components.
        extract_workers: NLP extraction process-pool size for
            :meth:`Nous.ingest_batch`; 1 (the default) extracts serially
            in-process.  Output is byte-identical either way — the pool
            only parallelises the per-document extraction stage ahead of
            the collective linking pass.
    """

    window_size: int = 500
    min_support: int = 3
    max_pattern_edges: int = 2
    accept_threshold: float = 0.25
    retrain_every: int = 200
    n_topics: int = 6
    lda_iterations: int = 60
    max_hops: int = 4
    beam_width: int = 8
    seed: int = 29
    extract_workers: int = 1

    def validate(self) -> None:
        if self.window_size < 1:
            raise ConfigError("window_size must be >= 1")
        if not 0.0 <= self.accept_threshold <= 1.0:
            raise ConfigError("accept_threshold must be in [0, 1]")
        if self.extract_workers < 1:
            raise ConfigError("extract_workers must be >= 1")


@dataclass
class IngestResult:
    """Outcome of ingesting one document."""

    doc_id: str
    raw_triples: int = 0
    accepted: int = 0
    rejected_mapping: Counter = field(default_factory=Counter)
    rejected_confidence: int = 0
    accepted_triples: List[Tuple[str, str, str, float]] = field(default_factory=list)


@dataclass
class EntitySummary:
    """Answer payload for "Tell me about X" (Figure 6)."""

    entity: str
    entity_type: str
    description: str
    facts: List[Tuple[str, str, str, float, bool]]  # s, p, o, conf, curated
    recent_dates: List[str]
    neighbors: List[str]

    def render(self) -> str:
        lines = [
            f"{self.entity} ({self.entity_type})",
            self.description or "(no description)",
            f"facts ({len(self.facts)}):",
        ]
        for s, p, o, conf, curated in self.facts[:25]:
            origin = "curated" if curated else "extracted"
            lines.append(f"  ({s}, {p}, {o})  conf={conf:.2f} [{origin}]")
        if self.recent_dates:
            lines.append("recent mentions: " + ", ".join(self.recent_dates[:8]))
        return "\n".join(lines)


class Nous:
    """End-to-end dynamic knowledge-graph system.

    Args:
        kb: Starting curated KB; the bundled drone KB when omitted.
        config: Pipeline settings.
    """

    def __init__(
        self,
        kb: Optional[KnowledgeBase] = None,
        config: Optional[NousConfig] = None,
    ) -> None:
        self.config = config or NousConfig()
        self.config.validate()
        self.kb = kb if kb is not None else build_drone_kb()
        self.dynamic = DynamicKnowledgeGraph(
            self.kb,
            window=CountWindow(size=self.config.window_size),
            min_support=self.config.min_support,
            max_pattern_edges=self.config.max_pattern_edges,
        )
        self.mapper = TripleMapper(self.kb)
        self.nlp = NlpPipeline(
            gazetteer=self.kb.gazetteer(), kb_aliases=self.kb.kb_alias_index()
        )
        self.estimator = ConfidenceEstimator(
            accept_threshold=self.config.accept_threshold
        )
        self.estimator.retrain(self.kb.store)
        self._accepted_since_retrain = 0
        self._last_timestamp = 0.0
        self._topic_state: Optional[LdaTopics] = None
        self._topic_graph: Optional[PropertyGraph] = None
        self._kb_version_at_topic_fit = -1
        self.documents_ingested = 0
        # Raw extraction buffer feeding §3.3's semi-supervised pattern
        # expansion (bounded: only recent evidence matters).
        self._raw_buffer: Deque[RawTriple] = deque(maxlen=2000)
        # Lazily-spawned extraction pool (extract_workers > 1 only).
        self._extractor: Optional[ParallelExtractor] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def ingest(
        self,
        text: str,
        doc_id: str = "",
        date: Optional[SimpleDate] = None,
        source: str = "unknown",
    ) -> IngestResult:
        """Run the full §3.2-§3.4 pipeline on one document."""
        result = IngestResult(doc_id=doc_id)
        document = self.nlp.process(text, doc_id=doc_id, doc_date=date, source=source)
        result.raw_triples = len(document.triples)
        if not document.triples:
            self.documents_ingested += 1
            return result

        context_words = [w for s in document.sentences for w in s.sentence.words()]
        self._raw_buffer.extend(document.triples)
        mapped, rejected = self.mapper.map_document(
            document.triples, context_words=context_words
        )
        for rej in rejected:
            result.rejected_mapping[rej.reason] += 1

        timestamp = self._timestamp_for(date)
        for triple in mapped:
            confidence = self._score_and_gate(triple, result)
            if confidence is None:
                continue
            self.dynamic.accept_fact(triple, confidence, timestamp)

        self._maybe_retrain()
        self.documents_ingested += 1
        return result

    def _score_and_gate(
        self,
        triple: MappedTriple,
        result: IngestResult,
        batch_keys: Optional[set] = None,
    ) -> Optional[float]:
        """Confidence-gate one mapped triple: score it, update source
        trust, and record the outcome on ``result``.

        Shared by the sequential and batch paths so acceptance semantics
        cannot drift between them.  ``batch_keys`` holds the (s, p, o)
        keys accepted earlier in the current batch but not yet persisted,
        so the agreement/contradiction signal matches the sequential path
        (which persists each fact before scoring the next).

        Returns:
            The final confidence when accepted, ``None`` when rejected.
        """
        confidence = self.estimator.confidence(triple)
        if confidence < self.config.accept_threshold:
            result.rejected_confidence += 1
            self.estimator.update_trust_from_kb(triple, in_kb=False)
            return None
        key = (triple.subject, triple.predicate, triple.object)
        already_known = (
            batch_keys is not None and key in batch_keys
        ) or self.kb.store.get(*key) is not None
        self.estimator.update_trust_from_kb(triple, in_kb=already_known)
        result.accepted += 1
        result.accepted_triples.append((*key, confidence))
        self._accepted_since_retrain += 1
        return confidence

    def _maybe_retrain(self) -> None:
        """Retrain the BPR models once the periodic budget is reached."""
        if (
            self.config.retrain_every
            and self._accepted_since_retrain >= self.config.retrain_every
        ):
            self.estimator.retrain(self.kb.store)
            self.mapper.linker.invalidate_cache()
            self._accepted_since_retrain = 0

    def retrain_if_due(self) -> None:
        """Run the periodic retrain now if its budget is reached.

        Public hook for callers that deferred retraining across several
        ``ingest_batch`` calls (``defer_retrain=True``) — e.g. the
        service-layer ingestion queue retrains once per busy period,
        when the queue goes idle, instead of once per micro-batch.
        """
        self._maybe_retrain()

    def ingest_corpus(self, articles: Sequence) -> List[IngestResult]:
        """Ingest a sequence of :class:`repro.data.articles.Article`."""
        return [
            self.ingest(a.text, doc_id=a.doc_id, date=a.date, source=a.source)
            for a in articles
        ]

    def ingest_batch(
        self, articles: Sequence, defer_retrain: bool = False
    ) -> List[IngestResult]:
        """Ingest a batch of articles through the amortised hot path.

        Functionally equivalent to calling :meth:`ingest` per article,
        but the per-document fixed costs are shared across the batch:

        - **entity linking** runs once, collectively, over the batch's
          unique mentions (instead of once per document);
        - **confidence retraining** happens at most once, after the
          whole batch (instead of every ``retrain_every`` accepted facts
          mid-stream), so batch members are scored against one model;
        - **miner updates** for facts that would be evicted from the
          sliding window before the batch ends are skipped entirely —
          their add/remove embedding updates are exact no-ops (see
          :meth:`DynamicKnowledgeGraph.accept_batch`).

        NLP extraction still happens per document — serially in-process,
        or fanned across a process pool when
        :attr:`NousConfig.extract_workers` > 1 (documents are
        independent until linking, and pool results are re-ordered to
        submission order, so output is byte-identical either way);
        acceptance gating, trust updates and stream timestamps follow
        the same order as the sequential path.

        Args:
            articles: :class:`repro.data.articles.Article`-like objects
                (``text`` / ``doc_id`` / ``date`` / ``source``), in
                stream (date) order.
            defer_retrain: Skip the end-of-batch retrain check; the
                caller promises to call :meth:`retrain_if_due` later
                (used by the ingestion queue to amortise retraining
                across consecutive micro-batches).

        Returns:
            One :class:`IngestResult` per article, in input order.
        """
        articles = list(articles)
        extracted = self._extract_batch(articles)

        results: List[IngestResult] = []
        doc_triples: List[List[RawTriple]] = []
        doc_contexts: List[Optional[List[str]]] = []
        for article, (triples, context_words) in zip(articles, extracted):
            result = IngestResult(doc_id=article.doc_id)
            result.raw_triples = len(triples)
            results.append(result)
            doc_triples.append(list(triples))
            doc_contexts.append(context_words)
            self._raw_buffer.extend(triples)

        mapped_per_doc = self.mapper.map_batch(doc_triples, doc_contexts)

        accepted_facts: List[Tuple[MappedTriple, float, float]] = []
        batch_keys: set = set()
        for article, result, (mapped, rejected) in zip(
            articles, results, mapped_per_doc
        ):
            for rej in rejected:
                result.rejected_mapping[rej.reason] += 1
            if not result.raw_triples:
                # Sequential ingest returns before consuming a stream
                # timestamp for triple-less documents; mirror that, or
                # every later fact would carry a shifted timestamp.
                self.documents_ingested += 1
                continue
            timestamp = self._timestamp_for(article.date)
            for triple in mapped:
                confidence = self._score_and_gate(
                    triple, result, batch_keys=batch_keys
                )
                if confidence is None:
                    continue
                accepted_facts.append((triple, confidence, timestamp))
                batch_keys.add(
                    (triple.subject, triple.predicate, triple.object)
                )
            self.documents_ingested += 1

        self.dynamic.accept_batch(accepted_facts)
        if not defer_retrain:
            self._maybe_retrain()
        return results

    # ------------------------------------------------------------------
    # extraction seam (serial / process pool)
    # ------------------------------------------------------------------
    def _extract_batch(
        self, articles: Sequence
    ) -> List[Tuple[List[RawTriple], Optional[List[str]]]]:
        """Extract every article: ``(triples, context_words-or-None)``
        per document, in input order.

        This is the single seam both the serial and the pooled path go
        through — the durability recorder wraps it to count extracted
        raws, and fanning out across ``extract_workers`` processes
        happens entirely inside it.
        """
        if self.config.extract_workers > 1 and len(articles) > 1:
            jobs = [
                ExtractionJob(
                    text=a.text, doc_id=a.doc_id, date=a.date, source=a.source
                )
                for a in articles
            ]
            extracted = self._ensure_extractor().extract_many(jobs)
            return [(doc.triples, doc.context_words) for doc in extracted]
        out: List[Tuple[List[RawTriple], Optional[List[str]]]] = []
        for article in articles:
            document = self.nlp.process(
                article.text,
                doc_id=article.doc_id,
                doc_date=article.date,
                source=article.source,
            )
            out.append(
                (
                    document.triples,
                    [w for s in document.sentences for w in s.sentence.words()]
                    if document.triples
                    else None,
                )
            )
        return out

    def _ensure_extractor(self) -> ParallelExtractor:
        if self._extractor is None:
            self._extractor = ParallelExtractor(
                PipelineSpec.from_pipeline(self.nlp),
                workers=self.config.extract_workers,
            )
        return self._extractor

    def close(self) -> None:
        """Release owned process resources (the extraction pool).

        Safe to call repeatedly; a later ``ingest_batch`` respawns the
        pool on demand.
        """
        if self._extractor is not None:
            self._extractor.close()
            self._extractor = None

    def ingest_facts(
        self,
        facts: Sequence[Tuple[str, str, str]],
        date: Optional[SimpleDate] = None,
        source: str = "structured",
        confidence: float = 0.9,
    ) -> int:
        """Ingest *structured* facts, skipping the NLP stage.

        §3.1's non-text domains (insider-threat logs, bibliography
        databases) feed the dynamic KG directly with triples; they still
        flow through the sliding window so trending queries see them.

        Args:
            facts: ``(subject, predicate, object)`` triples with
                canonical entity ids.
            date: Fact date (stream time derives from it).
            source: Provenance tag for trust tracking.
            confidence: Confidence recorded on the facts.

        Returns:
            Number of facts accepted (all of them; structured sources
            are not gated).
        """
        timestamp = self._timestamp_for(date)
        for subject, predicate, object_ in facts:
            raw = RawTriple(
                subject=subject, relation=predicate, object=object_,
                date=date, source=source, confidence=confidence,
            )
            mapped = MappedTriple(
                subject=subject,
                predicate=predicate,
                object=object_,
                object_is_literal=False,
                extraction_confidence=confidence,
                link_confidence=1.0,
                mapping_confidence=1.0,
                date=date,
                doc_id="",
                source=source,
                raw=raw,
            )
            self.dynamic.accept_fact(mapped, confidence, timestamp)
        return len(facts)

    @property
    def last_timestamp(self) -> float:
        """Current stream clock (timestamp of the newest accepted fact)."""
        return self._last_timestamp

    def _timestamp_for(self, date: Optional[SimpleDate]) -> float:
        if date is not None:
            ts = float(date.ordinal())
            if ts < self._last_timestamp:
                ts = self._last_timestamp  # keep stream time monotone
        else:
            ts = self._last_timestamp + 1.0
        self._last_timestamp = ts
        return ts

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def trending(self) -> WindowReport:
        """Closed frequent patterns over the current window (Fig. 7)."""
        return self.dynamic.trending_report(timestamp=self._last_timestamp)

    def entity_summary(self, mention: str) -> EntitySummary:
        """"Tell me about X" (Fig. 6)."""
        decision = self.mapper.linker.link(mention)
        entity = decision.entity
        facts = []
        dates = []
        for triple in self.kb.facts_about(entity):
            facts.append(
                (
                    triple.subject,
                    triple.predicate,
                    triple.object,
                    triple.confidence,
                    triple.curated,
                )
            )
            if triple.date is not None and not triple.curated:
                dates.append(str(triple.date))
        facts.sort(key=lambda f: (-f[3], f[1]))
        return EntitySummary(
            entity=entity,
            entity_type=self.kb.entity_type(entity) or "Thing",
            description=self.kb.description(entity),
            facts=facts,
            recent_dates=sorted(set(dates), reverse=True),
            neighbors=sorted(self.kb.store.neighbors(entity)),
        )

    def entity_trend(self, mention: str, limit: int = 20) -> List[Tuple]:
        """"What's new about X": recent windowed facts touching the entity.

        Returns:
            ``(timestamp, subject, predicate, object, confidence)`` tuples,
            newest first.
        """
        entity = self.mapper.linker.link(mention).entity
        rows = []
        for timed in self.dynamic.window.window_edges():
            if entity in (timed.src, timed.dst):
                props = timed.prop_dict()
                rows.append(
                    (
                        timed.timestamp,
                        timed.src,
                        timed.label,
                        timed.dst,
                        props.get("confidence", 0.0),
                    )
                )
        rows.sort(key=lambda r: -r[0])
        return rows[:limit]

    def explain(
        self,
        source_mention: str,
        target_mention: str,
        relationship: Optional[str] = None,
        k: int = 3,
    ) -> List[RankedPath]:
        """"Why is X related to Y?" — coherence-ranked paths (§3.6)."""
        source = self.mapper.linker.link(source_mention).entity
        target = self.mapper.linker.link(target_mention).entity
        graph = self._topic_annotated_graph()
        if not graph.has_vertex(source) or not graph.has_vertex(target):
            raise QAError(
                f"no graph vertices for {source_mention!r} / {target_mention!r}"
            )
        search = CoherentPathSearch(
            graph,
            max_hops=self.config.max_hops,
            beam_width=self.config.beam_width,
        )
        return search.top_k_paths(source, target, k=k, relationship=relationship)

    def statistics(self) -> GraphStatistics:
        """Quality dashboard payload (§4 demo feature 2)."""
        return compute_statistics(self.kb)

    # ------------------------------------------------------------------
    # refinement (§3.3 "still an active area of refinement")
    # ------------------------------------------------------------------
    def learn_predicate_patterns(self) -> Dict[str, List[str]]:
        """Semi-supervised predicate-pattern expansion over the recent
        extraction buffer, aligned against the current KG via distant
        supervision.

        Returns:
            predicate -> newly adopted relation patterns.
        """
        adopted = self.mapper.predicate_mapper.expand_from_corpus(
            list(self._raw_buffer), self.mapper.mention_index
        )
        return adopted

    # ------------------------------------------------------------------
    def _topic_annotated_graph(self) -> PropertyGraph:
        """KG property graph with LDA topic vectors, cached on the KB's
        monotonic version stamp (any fact/entity mutation invalidates)."""
        if (
            self._topic_graph is not None
            and self._kb_version_at_topic_fit == self.kb.version
        ):
            return self._topic_graph
        documents = {
            entity: self.kb.description(entity) or entity.replace("_", " ")
            for entity in self.kb.entities()
        }
        model = LdaModel(
            n_topics=self.config.n_topics,
            n_iterations=self.config.lda_iterations,
            seed=self.config.seed,
        )
        self._topic_state = model.fit(documents)
        graph = self.kb.to_property_graph()
        assign_topic_vectors(graph, self._topic_state)
        self._topic_graph = graph
        self._kb_version_at_topic_fit = self.kb.version
        return graph

    @property
    def topics(self) -> Optional[LdaTopics]:
        """The last fitted LDA state (None before any QA query)."""
        return self._topic_state
