"""The dynamic knowledge graph: curated base + streaming extracted facts.

Two coordinated views:

- the **accumulated KB** (:class:`~repro.kb.knowledge_base.KnowledgeBase`)
  holds everything accepted so far — entity/relationship queries and the
  QA path search run here;
- the **sliding window** (:class:`~repro.graph.temporal.DynamicGraph`)
  holds only recent extracted facts and feeds the streaming miner —
  trending queries run here.

Every accepted fact is therefore simultaneously persisted and streamed,
matching the paper's "queries are executed on a dynamically updated
Knowledge Graph".

A monotonic :attr:`DynamicKnowledgeGraph.version` stamp moves forward on
every observable change (persisted facts, window adds and evictions);
the query-result cache keys on it.  :meth:`accept_batch` is the batched
counterpart of :meth:`accept_fact` — identical final state, with
window-doomed facts never streamed to the miner.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.graph.temporal import CountWindow, DynamicGraph, TimeWindow
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.ontology import Ontology
from repro.linking.mapper import MappedTriple
from repro.mining.patterns import InstanceEdge
from repro.mining.streaming import StreamingPatternMiner, WindowReport


class DynamicKnowledgeGraph:
    """KB + sliding window + incremental miner, kept in lock-step.

    Args:
        kb: The curated knowledge base to grow.
        window: Window policy for the trending view (default: last
            500 extracted facts).
        min_support / max_pattern_edges: Miner parameters.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        window=None,
        min_support: int = 3,
        max_pattern_edges: int = 2,
    ) -> None:
        self.kb = kb
        self.window = DynamicGraph(window=window or CountWindow(size=500))
        self.miner = StreamingPatternMiner(
            min_support=min_support, max_edges=max_pattern_edges
        )
        self._live_miner_edges: Dict = {}  # TimedEdge -> miner edge id
        self.window.on_add(self._on_window_add)
        self.window.on_evict(self._on_window_evict)
        self.facts_streamed = 0

    # ------------------------------------------------------------------
    def accept_fact(
        self, mapped: MappedTriple, confidence: float, timestamp: float
    ) -> None:
        """Persist an accepted extracted fact and stream it to the miner."""
        self.kb.add_fact(
            mapped.subject,
            mapped.predicate,
            mapped.object,
            confidence=confidence,
            source=mapped.source or "extracted",
            date=mapped.date,
            curated=False,
        )
        self.window.add_edge(
            mapped.subject,
            mapped.object,
            mapped.predicate,
            timestamp=timestamp,
            confidence=confidence,
            source=mapped.source,
        )
        self.facts_streamed += 1

    def accept_batch(
        self, facts: Sequence[Tuple[MappedTriple, float, float]]
    ) -> int:
        """Persist a batch of accepted facts, amortising miner updates.

        A fact that enters the sliding window and is evicted again before
        the batch ends (batch longer than the window capacity) is a *net
        no-op* for both the window and the incremental miner: its
        add-then-remove embedding updates cancel exactly, and no query
        can observe the intermediate state.  The batch path persists such
        facts to the KB but skips streaming them, so the final KB, window
        content and miner supports are identical to the sequential path
        while the doomed stream updates are never paid.  (Only the
        ``total_added`` / ``total_evicted`` window counters differ.)

        Args:
            facts: ``(mapped, confidence, timestamp)`` tuples in
                non-decreasing timestamp order.

        Returns:
            Number of facts that were actually streamed to the window.
        """
        doomed = self._doomed_indices(facts)
        streamed = 0
        for index, (mapped, confidence, timestamp) in enumerate(facts):
            self.kb.add_fact(
                mapped.subject,
                mapped.predicate,
                mapped.object,
                confidence=confidence,
                source=mapped.source or "extracted",
                date=mapped.date,
                curated=False,
            )
            if index not in doomed:
                self.window.add_edge(
                    mapped.subject,
                    mapped.object,
                    mapped.predicate,
                    timestamp=timestamp,
                    confidence=confidence,
                    source=mapped.source,
                )
                streamed += 1
            self.facts_streamed += 1
        return streamed

    def _doomed_indices(
        self, facts: Sequence[Tuple[MappedTriple, float, float]]
    ) -> Set[int]:
        """Batch positions guaranteed to be evicted before the batch ends."""
        policy = self.window.window
        if not facts:
            return set()
        if isinstance(policy, CountWindow):
            overflow = len(facts) - policy.size
            return set(range(overflow)) if overflow > 0 else set()
        if isinstance(policy, TimeWindow):
            cutoff = facts[-1][2] - policy.span
            return {i for i, (_, _, ts) in enumerate(facts) if ts < cutoff}
        return set()  # unknown policy: stream everything

    def advance_time(self, timestamp: float) -> int:
        """Expire window content up to ``timestamp`` (time windows)."""
        return self.window.advance_time(timestamp)

    @property
    def version(self) -> int:
        """Monotonic stamp of observable KG state.

        Combines the accumulated-KB version (bumped on every fact or
        entity mutation) with the window version (bumped on every stream
        add *and* eviction), so any change that could alter a query
        result — persisted facts, trending window content — moves the
        stamp forward.  Query-result caches key on this.
        """
        return self.kb.version + self.window.version

    # ------------------------------------------------------------------
    # miner wiring
    # ------------------------------------------------------------------
    def _type_label(self, entity: str) -> str:
        return self.kb.entity_type(entity) or Ontology.ROOT

    def _to_instance_edge(self, timed) -> InstanceEdge:
        return InstanceEdge(
            src=timed.src,
            dst=timed.dst,
            src_label=self._type_label(timed.src),
            dst_label=self._type_label(timed.dst),
            predicate=timed.label,
        )

    def _on_window_add(self, timed) -> None:
        eid = self.miner.add_edge(self._to_instance_edge(timed))
        self._live_miner_edges[timed] = eid

    def _on_window_evict(self, timed) -> None:
        eid = self._live_miner_edges.pop(timed, None)
        if eid is not None:
            self.miner.remove_edge(eid)

    # ------------------------------------------------------------------
    def trending_report(self, timestamp: float = 0.0) -> WindowReport:
        """Current closed frequent patterns with transition events."""
        return self.miner.report(timestamp=timestamp)

    def graph_view(self, min_confidence: float = 0.0):
        """Property-graph view of the full accumulated KG.

        The unfiltered view is the KB's shared incremental mirror (no
        rebuild); confidence-filtered views are materialised on demand.
        """
        if min_confidence <= 0.0:
            return self.kb.graph_view()
        return self.kb.to_property_graph(min_confidence=min_confidence)
