"""The dynamic knowledge graph: curated base + streaming extracted facts.

Two coordinated views:

- the **accumulated KB** (:class:`~repro.kb.knowledge_base.KnowledgeBase`)
  holds everything accepted so far — entity/relationship queries and the
  QA path search run here;
- the **sliding window** (:class:`~repro.graph.temporal.DynamicGraph`)
  holds only recent extracted facts and feeds the streaming miner —
  trending queries run here.

Every accepted fact is therefore simultaneously persisted and streamed,
matching the paper's "queries are executed on a dynamically updated
Knowledge Graph".
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graph.temporal import CountWindow, DynamicGraph, TimeWindow
from repro.kb.knowledge_base import KnowledgeBase
from repro.kb.ontology import Ontology
from repro.linking.mapper import MappedTriple
from repro.mining.patterns import InstanceEdge
from repro.mining.streaming import StreamingPatternMiner, WindowReport


class DynamicKnowledgeGraph:
    """KB + sliding window + incremental miner, kept in lock-step.

    Args:
        kb: The curated knowledge base to grow.
        window: Window policy for the trending view (default: last
            500 extracted facts).
        min_support / max_pattern_edges: Miner parameters.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        window=None,
        min_support: int = 3,
        max_pattern_edges: int = 2,
    ) -> None:
        self.kb = kb
        self.window = DynamicGraph(window=window or CountWindow(size=500))
        self.miner = StreamingPatternMiner(
            min_support=min_support, max_edges=max_pattern_edges
        )
        self._live_miner_edges: Dict = {}  # TimedEdge -> miner edge id
        self.window.on_add(self._on_window_add)
        self.window.on_evict(self._on_window_evict)
        self.facts_streamed = 0

    # ------------------------------------------------------------------
    def accept_fact(
        self, mapped: MappedTriple, confidence: float, timestamp: float
    ) -> None:
        """Persist an accepted extracted fact and stream it to the miner."""
        self.kb.add_fact(
            mapped.subject,
            mapped.predicate,
            mapped.object,
            confidence=confidence,
            source=mapped.source or "extracted",
            date=mapped.date,
            curated=False,
        )
        self.window.add_edge(
            mapped.subject,
            mapped.object,
            mapped.predicate,
            timestamp=timestamp,
            confidence=confidence,
            source=mapped.source,
        )
        self.facts_streamed += 1

    def advance_time(self, timestamp: float) -> int:
        """Expire window content up to ``timestamp`` (time windows)."""
        return self.window.advance_time(timestamp)

    # ------------------------------------------------------------------
    # miner wiring
    # ------------------------------------------------------------------
    def _type_label(self, entity: str) -> str:
        return self.kb.entity_type(entity) or Ontology.ROOT

    def _to_instance_edge(self, timed) -> InstanceEdge:
        return InstanceEdge(
            src=timed.src,
            dst=timed.dst,
            src_label=self._type_label(timed.src),
            dst_label=self._type_label(timed.dst),
            predicate=timed.label,
        )

    def _on_window_add(self, timed) -> None:
        eid = self.miner.add_edge(self._to_instance_edge(timed))
        self._live_miner_edges[timed] = eid

    def _on_window_evict(self, timed) -> None:
        eid = self._live_miner_edges.pop(timed, None)
        if eid is not None:
            self.miner.remove_edge(eid)

    # ------------------------------------------------------------------
    def trending_report(self, timestamp: float = 0.0) -> WindowReport:
        """Current closed frequent patterns with transition events."""
        return self.miner.report(timestamp=timestamp)

    def graph_view(self, min_confidence: float = 0.0):
        """Property-graph view of the full accumulated KG."""
        return self.kb.to_property_graph(min_confidence=min_confidence)
