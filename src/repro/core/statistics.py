"""Quality statistics for the dynamic KG (demo feature 2 in §4:
"summarization of quality-related statistics (such as confidence
distributions ...)")."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.algorithms import pagerank
from repro.kb.knowledge_base import KnowledgeBase


@dataclass
class GraphStatistics:
    """Aggregate quality statistics of a knowledge base.

    Attributes:
        num_entities / num_facts: Totals.
        curated_facts / extracted_facts: Provenance split (Figure 2's
            red-vs-blue edges).
        confidence_histogram: Bucketed confidence counts; bucket i covers
            [i/10, (i+1)/10).
        facts_per_source: Source -> fact count.
        facts_per_predicate: Predicate -> fact count.
        entities_per_type: Type -> entity count.
        mean_extracted_confidence: Mean confidence over extracted facts.
    """

    num_entities: int = 0
    num_facts: int = 0
    curated_facts: int = 0
    extracted_facts: int = 0
    confidence_histogram: List[int] = field(default_factory=lambda: [0] * 10)
    facts_per_source: Dict[str, int] = field(default_factory=dict)
    facts_per_predicate: Dict[str, int] = field(default_factory=dict)
    entities_per_type: Dict[str, int] = field(default_factory=dict)
    mean_extracted_confidence: float = 0.0
    central_entities: List[Tuple[str, float]] = field(default_factory=list)

    def render(self) -> str:
        """Plain-text dashboard."""
        lines = [
            "Knowledge Graph statistics",
            "--------------------------",
            f"entities: {self.num_entities}   facts: {self.num_facts} "
            f"(curated {self.curated_facts}, extracted {self.extracted_facts})",
            f"mean extracted confidence: {self.mean_extracted_confidence:.3f}",
            "confidence histogram (0.0-1.0):",
        ]
        peak = max(self.confidence_histogram) or 1
        for i, count in enumerate(self.confidence_histogram):
            bar = "#" * int(round(30 * count / peak))
            lines.append(f"  [{i/10:.1f}-{(i+1)/10:.1f}) {count:6d} {bar}")
        lines.append("top predicates:")
        # Ties break by name, not dict insertion order: the rendering
        # must be identical whether the statistics object was computed
        # in-process or decoded from a wire payload whose JSON transport
        # re-ordered the tables.
        for predicate, count in sorted(
            self.facts_per_predicate.items(), key=lambda kv: (-kv[1], kv[0])
        )[:10]:
            lines.append(f"  {predicate:24s} {count}")
        lines.append("sources:")
        for source, count in sorted(
            self.facts_per_source.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"  {source:24s} {count}")
        if self.central_entities:
            lines.append("most central entities (PageRank):")
            for entity, rank in self.central_entities:
                lines.append(f"  {entity:24s} {rank:.4f}")
        return "\n".join(lines)


def compute_statistics(kb: KnowledgeBase, top_central: int = 8) -> GraphStatistics:
    """Scan the KB and aggregate quality statistics.

    Args:
        top_central: How many PageRank-central entities to report
            (0 skips the PageRank pass).
    """
    stats = GraphStatistics()
    stats.num_entities = len(kb.entities())
    per_source: Counter = Counter()
    per_predicate: Counter = Counter()
    per_type: Counter = Counter()
    extracted_confidences: List[float] = []
    for triple in kb.store:
        stats.num_facts += 1
        per_source[triple.source] += 1
        per_predicate[triple.predicate] += 1
        if triple.curated:
            stats.curated_facts += 1
        else:
            stats.extracted_facts += 1
            extracted_confidences.append(triple.confidence)
        bucket = min(9, int(triple.confidence * 10))
        stats.confidence_histogram[bucket] += 1
    for entity in kb.entities():
        per_type[kb.entity_type(entity) or "Thing"] += 1
    stats.facts_per_source = dict(per_source)
    stats.facts_per_predicate = dict(per_predicate)
    stats.entities_per_type = dict(per_type)
    if extracted_confidences:
        stats.mean_extracted_confidence = sum(extracted_confidences) / len(
            extracted_confidences
        )
    if top_central > 0 and stats.num_facts > 0:
        ranks = pagerank(kb.to_property_graph(), max_iterations=20)
        stats.central_entities = sorted(
            ranks.items(), key=lambda kv: -kv[1]
        )[:top_central]
    return stats
