"""Graph visualisation exports (Figure 4's subgraph rendering).

The demo paper shows an interactive web visualisation; offline we export
the same subgraphs as Graphviz DOT text and a plain-text adjacency
rendering, which any DOT renderer can draw.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Set

from repro.graph.algorithms import bfs_distances
from repro.graph.property_graph import PropertyGraph

_TYPE_COLORS = {
    "Company": "lightblue",
    "Person": "lightyellow",
    "Product": "lightgreen",
    "City": "lightpink",
    "Country": "lightpink",
    "Location": "lightpink",
    "Agency": "orange",
    "Technology": "lavender",
    "Industry": "gray90",
}


def ego_subgraph(
    graph: PropertyGraph, center: Hashable, hops: int = 2
) -> PropertyGraph:
    """The induced subgraph within ``hops`` of ``center``."""
    keep: Set[Hashable] = set(bfs_distances(graph, center, max_depth=hops))
    return graph.subgraph(vertex_filter=lambda vid, _props: vid in keep)


def subgraph_to_dot(
    graph: PropertyGraph,
    center: Optional[Hashable] = None,
    hops: int = 2,
    max_edges: int = 200,
) -> str:
    """Render (an ego subgraph of) a property graph as Graphviz DOT.

    Curated edges are drawn red, extracted edges blue with their
    confidence — matching Figure 2's legend ("lines in red and blue
    indicate facts available from curated KB and facts learned from web
    data").
    """
    sub = ego_subgraph(graph, center, hops) if center is not None else graph
    lines: List[str] = ["digraph KG {", "  rankdir=LR;", "  node [style=filled];"]
    for vid in sub.vertices():
        props = sub.vertex_props(vid)
        color = _TYPE_COLORS.get(str(props.get("type", "")), "white")
        label = str(props.get("name", vid))
        lines.append(f'  "{vid}" [label="{label}", fillcolor="{color}"];')
    for i, edge in enumerate(sub.edges()):
        if i >= max_edges:
            lines.append(f"  // ... truncated at {max_edges} edges")
            break
        curated = edge.props.get("curated", True)
        color = "red" if curated else "blue"
        label = edge.label
        confidence = edge.props.get("confidence")
        if confidence is not None and not curated:
            label = f"{label} ({confidence:.2f})"
        lines.append(
            f'  "{edge.src}" -> "{edge.dst}" [label="{label}", color="{color}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def subgraph_to_text(
    graph: PropertyGraph, center: Hashable, hops: int = 2
) -> str:
    """Indented text rendering of an ego subgraph (CLI-friendly)."""
    sub = ego_subgraph(graph, center, hops)
    distances = bfs_distances(sub, center, max_depth=hops)
    lines: List[str] = []
    for vid in sorted(distances, key=lambda v: (distances[v], str(v))):
        indent = "  " * distances[vid]
        vertex_type = sub.vertex_props(vid).get("type", "")
        lines.append(f"{indent}{vid} [{vertex_type}]")
        for edge in sorted(sub.out_edges(vid), key=lambda e: (e.label, str(e.dst))):
            lines.append(f"{indent}  -[{edge.label}]-> {edge.dst}")
    return "\n".join(lines)
