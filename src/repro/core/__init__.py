"""The NOUS system core: dynamic KG, construction pipeline, statistics.

:class:`~repro.core.pipeline.Nous` is the public facade a downstream
user instantiates: it wires every substrate together (Figure 1 of the
paper) — NLP extraction, entity/predicate mapping, confidence
estimation, the sliding-window dynamic graph feeding the streaming
miner, and the question-answering machinery.
"""

from repro.core.dynamic_kg import DynamicKnowledgeGraph
from repro.core.pipeline import IngestResult, Nous, NousConfig
from repro.core.statistics import GraphStatistics, compute_statistics

__all__ = [
    "DynamicKnowledgeGraph",
    "Nous",
    "NousConfig",
    "IngestResult",
    "GraphStatistics",
    "compute_statistics",
]
